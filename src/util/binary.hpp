// Minimal binary stream helpers for the compact corpus format
// (telemetry/binary.cpp) and the dataset cache (synth/dataset_io.cpp).
//
// Fixed-width little-endian integers, length-prefixed strings, and bulk
// POD-array copies. The format is only written and read on little-endian
// hosts (enforced below), so values are stored in native byte order.
//
// Both ends keep a running FNV-1a hash of every byte written/read. A
// format ends its file with `write_checksum()` (the hash as a trailing
// u64, itself unhashed) and its loader ends with `verify_checksum()` —
// any bit flip or truncation anywhere in the image then fails with a
// typed std::runtime_error instead of loading silently-corrupt data.
// (The corpus fingerprint only covers the corpus section; the checksum
// covers everything, including truth/whitelist/VT sections.)
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/hash.hpp"

namespace longtail::util {

static_assert(std::endian::native == std::endian::little,
              "binary corpus format assumes a little-endian host");

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* p,
                                 std::size_t n) noexcept {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
  return h;
}

// Round up to the 8-byte alignment the sectioned (v3) formats guarantee
// for every section payload, so mapped integer columns can be read in
// place.
inline constexpr std::uint64_t align8(std::uint64_t n) noexcept {
  return (n + 7) & ~std::uint64_t{7};
}

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw std::runtime_error("cannot write " + path);
  }

  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u16(std::uint16_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  template <typename T>
  void pod_array(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(data.size());
    bytes(data.data(), data.size_bytes());
  }

  void bytes(const void* p, std::size_t n) {
    hash_ = fnv1a_bytes(hash_, p, n);
    region_hash_ = fnv1a_bytes(region_hash_, p, n);
    tell_ += n;
    out_.write(static_cast<const char*>(p),
               static_cast<std::streamsize>(n));
    if (!out_) throw std::runtime_error("write failed: " + path_);
  }

  // Bytes written so far (the sectioned formats record section offsets).
  [[nodiscard]] std::uint64_t tell() const noexcept { return tell_; }

  // Zero-pads to the next 8-byte boundary (section payload alignment).
  void pad_to_8() {
    static constexpr char kZeros[8] = {};
    const std::uint64_t pad = align8(tell_) - tell_;
    if (pad != 0) bytes(kZeros, static_cast<std::size_t>(pad));
  }

  // Secondary FNV-1a hash over a caller-delimited byte region — the
  // sectioned formats use it for per-section checksums, independent of
  // the whole-file running hash.
  void reset_region_hash(std::uint64_t seed = kFnvOffset) noexcept {
    region_hash_ = seed;
  }
  [[nodiscard]] std::uint64_t region_hash() const noexcept {
    return region_hash_;
  }

  // Appends the running whole-file hash as a trailing u64 (excluded from
  // the hash itself). Call last, just before finish().
  void write_checksum() {
    const std::uint64_t h = hash_;
    out_.write(reinterpret_cast<const char*>(&h), sizeof h);
    if (!out_) throw std::runtime_error("write failed: " + path_);
  }

  [[nodiscard]] std::uint64_t checksum() const noexcept { return hash_; }

  void finish() {
    out_.flush();
    if (!out_) throw std::runtime_error("write failed: " + path_);
  }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t hash_ = kFnvOffset;
  std::uint64_t region_hash_ = kFnvOffset;
  std::uint64_t tell_ = 0;
};

// Table-of-contents writer for the sectioned (v3) binary formats. The
// caller writes the fixed 16-byte header itself (magic, version, section
// count, reserved) with the writer's region hash freshly reset; each
// section is then bracketed with begin()/end(), and finish() appends the
// section table followed by its checksum. Layout invariants (see
// docs/corpus-format.md): section payloads start 8-aligned and their
// extents are zero-padded to 8 bytes, padding included in the per-section
// checksum, so every byte of the file is covered by exactly one checksum
// region.
class SectionWriter {
 public:
  struct Entry {
    std::uint32_t kind = 0;
    std::uint64_t offset = 0;    // payload start (8-aligned)
    std::uint64_t count = 0;     // element count (0 for opaque streams)
    std::uint64_t length = 0;    // payload bytes, excluding padding
    std::uint64_t checksum = 0;  // FNV-1a over the padded extent
  };
  static constexpr std::size_t kEntryBytes = 40;

  // Snapshot the header hash: the caller has just written the header with
  // region hash reset, so region_hash() here covers exactly those bytes.
  explicit SectionWriter(BinaryWriter& out)
      : out_(out), header_hash_(out.region_hash()) {}

  void begin(std::uint32_t kind, std::uint64_t count) {
    entries_.push_back(Entry{.kind = kind,
                             .offset = out_.tell(),
                             .count = count,
                             .length = 0,
                             .checksum = 0});
    out_.reset_region_hash();
  }

  void end() {
    Entry& e = entries_.back();
    e.length = out_.tell() - e.offset;
    out_.pad_to_8();
    e.checksum = out_.region_hash();
  }

  // Writes the section table and its checksum (FNV-1a over the header
  // bytes followed by the table bytes). Call once, after the last end().
  void finish() {
    out_.reset_region_hash(header_hash_);
    for (const Entry& e : entries_) {
      out_.u32(e.kind);
      out_.u32(0);
      out_.u64(e.offset);
      out_.u64(e.count);
      out_.u64(e.length);
      out_.u64(e.checksum);
    }
    const std::uint64_t table_hash = out_.region_hash();
    out_.u64(table_hash);
  }

  [[nodiscard]] std::size_t section_count() const noexcept {
    return entries_.size();
  }

 private:
  BinaryWriter& out_;
  std::uint64_t header_hash_;
  std::vector<Entry> entries_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : path_(path), in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("cannot read " + path);
  }

  [[nodiscard]] std::uint8_t u8() { return read_pod<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return read_pod<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_pod<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_pod<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return read_pod<std::int64_t>(); }
  [[nodiscard]] double f64() { return read_pod<double>(); }

  [[nodiscard]] std::string str() {
    std::string s(checked_count(u32(), 1), '\0');
    bytes(s.data(), s.size());
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> pod_array() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> v(checked_count(u64(), sizeof(T)));
    bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  void bytes(void* p, std::size_t n) {
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n)
      throw std::runtime_error("truncated binary file: " + path_);
    hash_ = fnv1a_bytes(hash_, p, n);
  }

  // Reads the trailing u64 written by BinaryWriter::write_checksum and
  // compares it against the running hash of every byte read so far. Call
  // after the last field of the format.
  void verify_checksum() {
    const std::uint64_t expected = hash_;
    std::uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof stored);
    if (static_cast<std::size_t>(in_.gcount()) != sizeof stored)
      throw std::runtime_error("truncated binary file: " + path_);
    if (stored != expected)
      throw std::runtime_error("binary file checksum mismatch: " + path_);
  }

  [[nodiscard]] std::uint64_t checksum() const noexcept { return hash_; }

  // Reject counts that would outrun the file — a corrupt header must fail
  // with a clean error, not an allocation blow-up. `elem_size` is a lower
  // bound on the serialized bytes per element; formats that read N
  // variable-size records call this before resizing containers by N.
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t elem_size) {
    if (remaining_ == static_cast<std::uintmax_t>(-1)) {
      const auto pos = in_.tellg();
      in_.seekg(0, std::ios::end);
      remaining_ = static_cast<std::uintmax_t>(in_.tellg());
      in_.seekg(pos);
    }
    if (elem_size != 0 && n > remaining_ / elem_size)
      throw std::runtime_error("corrupt binary file (bad count): " + path_);
    return static_cast<std::size_t>(n);
  }

 private:
  template <typename T>
  [[nodiscard]] T read_pod() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }

  std::string path_;
  std::ifstream in_;
  std::uintmax_t remaining_ = static_cast<std::uintmax_t>(-1);
  std::uint64_t hash_ = kFnvOffset;
};

// Cursor over an in-memory byte range — the reader half of the sectioned
// formats, where payloads are parsed out of a file mapping instead of a
// stream. Same field vocabulary as BinaryReader; every read is bounds-
// checked against the section extent, so a corrupt length field inside a
// section is a typed error, never an out-of-bounds read.
class SpanReader {
 public:
  explicit SpanReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return read_pod<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return read_pod<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_pod<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_pod<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return read_pod<std::int64_t>(); }
  [[nodiscard]] double f64() { return read_pod<double>(); }

  [[nodiscard]] std::string str() {
    const std::size_t n = checked_count(u32(), 1);
    std::string s(n, '\0');
    bytes(s.data(), n);
    return s;
  }

  void bytes(void* p, std::size_t n) {
    if (n > remaining())
      throw std::runtime_error("corrupt binary section: truncated field");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  // Borrow `n` elements in place (no copy). The caller owns keeping the
  // underlying image alive for as long as the span is used.
  template <typename T>
  [[nodiscard]] std::span<const T> pod_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n > remaining() / sizeof(T))
      throw std::runtime_error("corrupt binary section: truncated array");
    const auto* p = reinterpret_cast<const T*>(data_.data() + pos_);
    assert(reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0);
    pos_ += n * sizeof(T);
    return {p, n};
  }

  // Owning variant, mirroring BinaryReader::pod_array's shape: u64 count
  // then the raw elements.
  template <typename T>
  [[nodiscard]] std::vector<T> pod_array() {
    const std::size_t n = checked_count(u64(), sizeof(T));
    const auto sp = pod_span<T>(n);
    return {sp.begin(), sp.end()};
  }

  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t elem_size) const {
    if (elem_size != 0 && n > remaining() / elem_size)
      throw std::runtime_error("corrupt binary section: bad count");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t tell() const noexcept { return pos_; }

 private:
  template <typename T>
  [[nodiscard]] T read_pod() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace longtail::util
