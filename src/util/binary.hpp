// Minimal binary stream helpers for the compact corpus format
// (telemetry/binary.cpp) and the dataset cache (synth/dataset_io.cpp).
//
// Fixed-width little-endian integers, length-prefixed strings, and bulk
// POD-array copies. The format is only written and read on little-endian
// hosts (enforced below), so values are stored in native byte order.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace longtail::util {

static_assert(std::endian::native == std::endian::little,
              "binary corpus format assumes a little-endian host");

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw std::runtime_error("cannot write " + path);
  }

  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u16(std::uint16_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  template <typename T>
  void pod_array(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(data.size());
    bytes(data.data(), data.size_bytes());
  }

  void bytes(const void* p, std::size_t n) {
    out_.write(static_cast<const char*>(p),
               static_cast<std::streamsize>(n));
    if (!out_) throw std::runtime_error("write failed: " + path_);
  }

  void finish() {
    out_.flush();
    if (!out_) throw std::runtime_error("write failed: " + path_);
  }

 private:
  std::string path_;
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : path_(path), in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("cannot read " + path);
  }

  [[nodiscard]] std::uint8_t u8() { return read_pod<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return read_pod<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_pod<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_pod<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return read_pod<std::int64_t>(); }
  [[nodiscard]] double f64() { return read_pod<double>(); }

  [[nodiscard]] std::string str() {
    std::string s(checked_count(u32(), 1), '\0');
    bytes(s.data(), s.size());
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> pod_array() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> v(checked_count(u64(), sizeof(T)));
    bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  void bytes(void* p, std::size_t n) {
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n)
      throw std::runtime_error("truncated binary file: " + path_);
  }

 private:
  template <typename T>
  [[nodiscard]] T read_pod() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }

  // Reject counts that would outrun the file — a corrupt header must fail
  // with a clean error, not an allocation blow-up.
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t elem_size) {
    if (remaining_ == static_cast<std::uintmax_t>(-1)) {
      const auto pos = in_.tellg();
      in_.seekg(0, std::ios::end);
      remaining_ = static_cast<std::uintmax_t>(in_.tellg());
      in_.seekg(pos);
    }
    if (elem_size != 0 && n > remaining_ / elem_size)
      throw std::runtime_error("corrupt binary file (bad count): " + path_);
    return static_cast<std::size_t>(n);
  }

  std::string path_;
  std::ifstream in_;
  std::uintmax_t remaining_ = static_cast<std::uintmax_t>(-1);
};

}  // namespace longtail::util
