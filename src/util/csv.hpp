// Minimal delimited-text writing/reading used by the corpus exporter and
// the figure dumps. Handles quoting for the CSV dialect; the TSV dialect
// rejects embedded tabs/newlines instead (entity names never contain
// them).
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace longtail::util {

class DelimitedWriter {
 public:
  // `delimiter` is ',' for CSV or '\t' for TSV.
  DelimitedWriter(const std::string& path, char delimiter);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& cells);

  template <typename... Cells>
  void row(const Cells&... cells) {
    write_row({to_cell(cells)...});
  }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(std::string_view s) { return std::string(s); }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(T value) {
    return std::to_string(value);
  }

  [[nodiscard]] std::string escape(const std::string& cell) const;

  std::ofstream out_;
  char delimiter_;
};

// Reads a delimited file line by line. No embedded-newline support (the
// exporter never produces it).
class DelimitedReader {
 public:
  DelimitedReader(const std::string& path, char delimiter);

  [[nodiscard]] bool ok() const { return static_cast<bool>(in_); }

  // Returns false at end of file.
  bool read_row(std::vector<std::string>& cells);

 private:
  std::ifstream in_;
  char delimiter_;
};

}  // namespace longtail::util
