#include "util/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/trace.hpp"

namespace longtail::util {

namespace {

thread_local bool t_on_worker = false;

std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(ThreadPool::default_threads());
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Carry the submitting thread's open trace span across to the worker so
  // spans recorded inside the task nest below it (no-op when tracing is
  // off; tasks themselves are unchanged). With profiling on, each task is
  // additionally timed into the per-worker busy accounting — and, when
  // tracing too, wrapped in a "pool.task" span nested under the
  // submitting span, which is what trace_report sums to compute per-phase
  // parallel efficiency.
  const bool traced = trace::enabled();
  const bool profiled = profile::enabled();
  if (traced || profiled) {
    task = [parent = traced ? trace::current_span() : 0, traced, profiled,
            inner = std::move(task)] {
      std::optional<trace::ParentScope> scope;
      if (traced) scope.emplace(parent);
      if (!profiled) {
        inner();
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      {
        std::optional<trace::Span> span;
        if (traced) span.emplace("pool.task");
        inner();
      }
      const auto busy_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      profile::note_worker_task(busy_ns);
      LONGTAIL_METRIC_RECORD_MS("profile.pool.task_ms",
                                static_cast<double>(busy_ns) / 1e6);
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("LONGTAIL_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) {
      // 0 and 1 both mean "serial": no workers, helpers run inline.
      return v <= 1 ? 0u : static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw <= 1 ? 0u : hw;
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& global_pool() { return *pool_slot(); }

void set_global_threads(unsigned threads) {
  pool_slot() = std::make_unique<ThreadPool>(threads <= 1 ? 0u : threads);
}

unsigned effective_threads() {
  const unsigned n = global_pool().size();
  return n == 0 ? 1u : n;
}

namespace detail {

void rethrow_first(const std::vector<std::exception_ptr>& errors) {
  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace detail

}  // namespace longtail::util
