// Partitioned open-addressing hash table with software-prefetch batched
// probes (DRAMHiT / CASHT++-style), tuned for the pipeline's hot point
// lookups: prevalence-cap counting, retransmit dedup, whitelist and
// reputation probes, interner indexing, and the chain-matching fixup.
//
// Design:
//   * `FlatMap<K, V>` / `FlatSet<K>` keep entries in one dense vector in
//     insertion order (erase is swap-remove) and probe through per-
//     partition open-addressing index arrays of 8-byte slots
//     {entry index, 32-bit hash fragment}. A 64-byte cache line holds a
//     group of 8 slots, so a probe walk touches one line in the common
//     case and the fragment check makes entry loads (the second cache
//     miss) almost always true hits.
//   * The index is split into 2^kPartitionBits fixed partitions selected
//     by the hash's top bits — partitioned rehash (small pauses, no
//     global stop) and safe concurrent *read* sharding; the partition
//     count never depends on the thread count, so probe statistics are
//     deterministic.
//   * Batched API: `find_batch` / `insert_batch` process keys in windows
//     of kBatchWidth, issuing `__builtin_prefetch` for every window
//     member's index group (and candidate entry line) before any probe
//     resolves, hiding the cache-miss latency that dominates point
//     lookups on large tables. `prefetch(key)` is the building block for
//     call sites that interleave lookups with other work.
//   * Deletion is tombstone-free: erase backward-shifts the probe chain,
//     so insert/erase churn never degrades probe lengths the way
//     tombstone schemes do, and rehash never has to filter dead slots.
//   * Iteration order is the insertion order modulo swap-remove erases —
//     a pure function of the operation sequence, never of hashing,
//     addresses, or scheduling. Dataset fingerprints and table stdout
//     stay byte-identical across reruns, platforms, and thread counts.
//
// Instrumented with metrics counters (enabled runs only):
//   util.flat_table.probes            slots inspected by finds/inserts
//   util.flat_table.prefetch_batches  batched-API invocations
//   util.flat_table.rehashes          partition rehashes
//
// References returned by find/operator[]/try_emplace are invalidated by
// any mutating call (the dense vector reallocates and swap-remove moves
// entries) — unlike std::unordered_map, do not hold them across inserts
// or erases. Concurrent const reads are safe; any mutation requires
// exclusive access.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/hash.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace longtail::util {

// Default hasher: avalanche-mixes integral keys, `.raw()` id wrappers,
// and FNV-1a digests of string-like keys into a full 64-bit value (the
// table consumes the top bits for partition selection, the middle for the
// fragment, and the bottom for the bucket, so the mix must be full-width).
template <typename K>
struct FlatHash {
  [[nodiscard]] std::uint64_t operator()(const K& key) const noexcept {
    if constexpr (std::is_integral_v<K>) {
      return mix64(static_cast<std::uint64_t>(key));
    } else if constexpr (requires { key.raw(); }) {
      return mix64(static_cast<std::uint64_t>(key.raw()));
    } else if constexpr (std::is_convertible_v<const K&, std::string_view>) {
      return mix64(fnv1a64(std::string_view(key)));
    } else {
      static_assert(sizeof(K) == 0,
                    "FlatHash: provide a specialization for this key type");
      return 0;
    }
  }
};

namespace detail_flat {

// One index slot: which dense entry lives here plus a 32-bit fragment of
// its hash. The fragment is compared before the entry is ever loaded, so
// a probe only pays the second cache miss on a (near-certain) true hit.
struct Slot {
  std::uint32_t index;
  std::uint32_t fragment;
};

inline constexpr std::uint32_t kNilSlot = 0xFFFF'FFFFu;

inline void count_probes(std::uint64_t probes) noexcept {
  LONGTAIL_METRIC_COUNT("util.flat_table.probes", probes);
}

inline void count_batch() noexcept {
  LONGTAIL_METRIC_COUNT("util.flat_table.prefetch_batches", 1);
}

inline void count_rehash() noexcept {
  LONGTAIL_METRIC_COUNT("util.flat_table.rehashes", 1);
}

}  // namespace detail_flat

template <typename K, typename V, typename Hash = FlatHash<K>,
          unsigned kPartitionBits = 3>
class FlatMap {
 public:
  static constexpr std::size_t kPartitions = std::size_t{1} << kPartitionBits;
  // Keys per software-pipelined window of the batched API: enough
  // in-flight prefetches to cover DRAM latency, small enough to stay in
  // registers/L1.
  static constexpr std::size_t kBatchWidth = 16;

  struct Entry {
    K key;
    [[no_unique_address]] V value;
  };

  using const_iterator = typename std::vector<Entry>::const_iterator;
  using iterator = typename std::vector<Entry>::iterator;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  // Insertion-order iteration (see file comment for the erase caveat).
  // Mutable iteration may change values, never keys.
  [[nodiscard]] const_iterator begin() const noexcept {
    return entries_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }
  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }

  void clear() noexcept {
    for (Partition& p : parts_) {
      p.slots.clear();
      p.mask = 0;
      p.used = 0;
    }
    entries_.clear();
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    // Per-partition capacity for an even spread at the target load.
    const std::size_t per = (n + kPartitions - 1) / kPartitions;
    for (Partition& p : parts_) grow_to(p, slots_for(per));
  }

  [[nodiscard]] const V* find(const K& key) const {
    const std::uint64_t h = hash_(key);
    const Partition& p = parts_[h >> kPartShift];
    if (p.slots.empty()) return nullptr;
    std::size_t i = h & p.mask;
    const std::uint32_t frag = static_cast<std::uint32_t>(h >> 32);
    std::uint64_t probes = 0;
    for (;;) {
      ++probes;
      const detail_flat::Slot s = p.slots[i];
      if (s.index == detail_flat::kNilSlot) break;
      if (s.fragment == frag && entries_[s.index].key == key) {
        detail_flat::count_probes(probes);
        return &entries_[s.index].value;
      }
      i = (i + 1) & p.mask;
    }
    detail_flat::count_probes(probes);
    return nullptr;
  }
  [[nodiscard]] V* find(const K& key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }
  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != nullptr;
  }

  // Inserts {key, V(args...)} unless the key is present. Returns
  // {pointer to the (existing or new) value, inserted?}. Like
  // std::unordered_map::try_emplace, `args` are only consumed when the
  // insert actually happens.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    return emplace_hashed(hash_(key), key, std::forward<Args>(args)...);
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  // Erases `key` if present (backward-shift deletion — no tombstones).
  // The last-inserted entry takes the erased entry's dense position.
  bool erase(const K& key) {
    const std::uint64_t h = hash_(key);
    Partition& p = parts_[h >> kPartShift];
    if (p.slots.empty()) return false;
    std::size_t i = h & p.mask;
    const std::uint32_t frag = static_cast<std::uint32_t>(h >> 32);
    std::uint64_t probes = 0;
    std::uint32_t entry_index = detail_flat::kNilSlot;
    for (;;) {
      ++probes;
      const detail_flat::Slot s = p.slots[i];
      if (s.index == detail_flat::kNilSlot) break;
      if (s.fragment == frag && entries_[s.index].key == key) {
        entry_index = s.index;
        break;
      }
      i = (i + 1) & p.mask;
    }
    detail_flat::count_probes(probes);
    if (entry_index == detail_flat::kNilSlot) return false;

    // Backward shift: pull every displaced successor one step toward its
    // home bucket until the chain hits an empty slot.
    std::size_t hole = i;
    std::size_t j = (i + 1) & p.mask;
    while (p.slots[j].index != detail_flat::kNilSlot) {
      const std::size_t home =
          hash_(entries_[p.slots[j].index].key) & p.mask;
      // The occupant of j may fill the hole iff the hole lies within
      // [home, j] in cyclic probe order.
      if (((j - home) & p.mask) >= ((j - hole) & p.mask)) {
        p.slots[hole] = p.slots[j];
        hole = j;
      }
      j = (j + 1) & p.mask;
    }
    p.slots[hole] = {detail_flat::kNilSlot, 0};
    --p.used;

    // Dense-vector swap-remove; repoint the moved entry's slot.
    const std::uint32_t last =
        static_cast<std::uint32_t>(entries_.size() - 1);
    if (entry_index != last) {
      entries_[entry_index] = std::move(entries_[last]);
      const std::uint64_t hm = hash_(entries_[entry_index].key);
      Partition& pm = parts_[hm >> kPartShift];
      std::size_t k = hm & pm.mask;
      while (pm.slots[k].index != last) k = (k + 1) & pm.mask;
      pm.slots[k].index = entry_index;
    }
    entries_.pop_back();
    return true;
  }

  // Prefetches the index group `key`'s probe starts in (read intent).
  void prefetch(const K& key) const {
    const std::uint64_t h = hash_(key);
    const Partition& p = parts_[h >> kPartShift];
    if (!p.slots.empty())
      __builtin_prefetch(p.slots.data() + (h & p.mask), 0, 1);
  }

  // Batched lookup: out[i] = found value pointer or nullptr; returns the
  // hit count. Keys are processed in kBatchWidth windows: hashes and
  // index-group prefetches are issued for the whole window first, then
  // probes resolve to candidate entries (prefetching each candidate
  // line), then keys are verified — three pipeline stages per window, so
  // no probe waits on a cold cache line it could have announced earlier.
  std::size_t find_batch(std::span<const K> keys,
                         std::span<const V*> out) const {
    assert(out.size() >= keys.size());
    detail_flat::count_batch();
    std::size_t found = 0;
    std::array<std::uint64_t, kBatchWidth> hs;
    std::array<std::uint32_t, kBatchWidth> cand;
    std::array<std::uint32_t, kBatchWidth> slot;
    for (std::size_t base = 0; base < keys.size(); base += kBatchWidth) {
      const std::size_t n = std::min(kBatchWidth, keys.size() - base);
      // Stage 1: hash + index-group prefetch for the whole window.
      for (std::size_t j = 0; j < n; ++j) {
        hs[j] = hash_(keys[base + j]);
        const Partition& p = parts_[hs[j] >> kPartShift];
        if (!p.slots.empty())
          __builtin_prefetch(p.slots.data() + (hs[j] & p.mask), 0, 1);
      }
      // Stage 2: probe to the first fragment match; prefetch its entry.
      std::uint64_t probes = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const Partition& p = parts_[hs[j] >> kPartShift];
        cand[j] = detail_flat::kNilSlot;
        if (p.slots.empty()) continue;
        const std::uint32_t frag = static_cast<std::uint32_t>(hs[j] >> 32);
        std::size_t i = hs[j] & p.mask;
        for (;;) {
          ++probes;
          const detail_flat::Slot s = p.slots[i];
          if (s.index == detail_flat::kNilSlot) break;
          if (s.fragment == frag) {
            cand[j] = s.index;
            slot[j] = static_cast<std::uint32_t>(i);
            __builtin_prefetch(entries_.data() + s.index, 0, 1);
            break;
          }
          i = (i + 1) & p.mask;
        }
      }
      // Stage 3: verify candidates; fragment collisions (rare) fall back
      // to continuing the scalar probe walk past the candidate slot.
      for (std::size_t j = 0; j < n; ++j) {
        const V** slot_out = &out[base + j];
        *slot_out = nullptr;
        if (cand[j] == detail_flat::kNilSlot) continue;
        if (entries_[cand[j]].key == keys[base + j]) {
          *slot_out = &entries_[cand[j]].value;
          ++found;
          continue;
        }
        const Partition& p = parts_[hs[j] >> kPartShift];
        const std::uint32_t frag = static_cast<std::uint32_t>(hs[j] >> 32);
        std::size_t i = (slot[j] + 1) & p.mask;
        for (;;) {
          ++probes;
          const detail_flat::Slot s = p.slots[i];
          if (s.index == detail_flat::kNilSlot) break;
          if (s.fragment == frag && entries_[s.index].key == keys[base + j]) {
            *slot_out = &entries_[s.index].value;
            ++found;
            break;
          }
          i = (i + 1) & p.mask;
        }
      }
      detail_flat::count_probes(probes);
    }
    return found;
  }

  // Batched insert: window-prefetches like find_batch, then applies the
  // inserts in key order, so duplicates inside the batch resolve exactly
  // as sequential try_emplace calls would. When `inserted` is non-empty,
  // inserted[i] records whether key i created a new entry.
  void insert_batch(std::span<const K> keys, std::span<const V> values,
                    std::span<std::uint8_t> inserted = {}) {
    assert(values.size() >= keys.size());
    assert(inserted.empty() || inserted.size() >= keys.size());
    detail_flat::count_batch();
    std::array<std::uint64_t, kBatchWidth> hs;
    for (std::size_t base = 0; base < keys.size(); base += kBatchWidth) {
      const std::size_t n = std::min(kBatchWidth, keys.size() - base);
      for (std::size_t j = 0; j < n; ++j) {
        hs[j] = hash_(keys[base + j]);
        const Partition& p = parts_[hs[j] >> kPartShift];
        if (!p.slots.empty())
          __builtin_prefetch(p.slots.data() + (hs[j] & p.mask), 1, 1);
      }
      for (std::size_t j = 0; j < n; ++j) {
        const bool fresh =
            emplace_hashed(hs[j], keys[base + j], values[base + j]).second;
        if (!inserted.empty()) inserted[base + j] = fresh ? 1 : 0;
      }
    }
  }

 private:
  static constexpr unsigned kPartShift = 64 - kPartitionBits;
  static constexpr std::size_t kMinSlots = 16;

  struct Partition {
    std::vector<detail_flat::Slot> slots;  // power-of-two or empty
    std::size_t mask = 0;
    std::size_t used = 0;
  };

  // Smallest power-of-two slot count that keeps `n` entries at or under
  // ~0.75 load.
  static std::size_t slots_for(std::size_t n) {
    std::size_t cap = kMinSlots;
    while (n * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  void grow_to(Partition& p, std::size_t new_cap) {
    if (new_cap <= p.slots.size()) return;
    if (!p.slots.empty()) detail_flat::count_rehash();
    std::vector<detail_flat::Slot> old = std::move(p.slots);
    p.slots.assign(new_cap, {detail_flat::kNilSlot, 0});
    p.mask = new_cap - 1;
    // Tombstone-free by construction: every surviving slot is live, so
    // the rehash is a straight redistribution.
    for (const detail_flat::Slot s : old) {
      if (s.index == detail_flat::kNilSlot) continue;
      std::size_t i = hash_(entries_[s.index].key) & p.mask;
      while (p.slots[i].index != detail_flat::kNilSlot) i = (i + 1) & p.mask;
      p.slots[i] = s;
    }
  }

  template <typename... Args>
  std::pair<V*, bool> emplace_hashed(std::uint64_t h, const K& key,
                                     Args&&... args) {
    Partition& p = parts_[h >> kPartShift];
    if (p.slots.empty() || (p.used + 1) * 4 > p.slots.size() * 3)
      grow_to(p, p.slots.empty() ? kMinSlots : p.slots.size() * 2);
    std::size_t i = h & p.mask;
    const std::uint32_t frag = static_cast<std::uint32_t>(h >> 32);
    std::uint64_t probes = 0;
    for (;;) {
      ++probes;
      const detail_flat::Slot s = p.slots[i];
      if (s.index == detail_flat::kNilSlot) break;
      if (s.fragment == frag && entries_[s.index].key == key) {
        detail_flat::count_probes(probes);
        return {&entries_[s.index].value, false};
      }
      i = (i + 1) & p.mask;
    }
    detail_flat::count_probes(probes);
    assert(entries_.size() < detail_flat::kNilSlot);
    const std::uint32_t index = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{key, V(std::forward<Args>(args)...)});
    p.slots[i] = {index, frag};
    ++p.used;
    return {&entries_[index].value, true};
  }

  std::array<Partition, kPartitions> parts_;
  std::vector<Entry> entries_;  // dense, insertion order (erase swaps)
  [[no_unique_address]] Hash hash_;
};

// Set facade over FlatMap with an empty mapped type: same partitioned
// index, batched API, determinism contract, and metrics.
template <typename K, typename Hash = FlatHash<K>,
          unsigned kPartitionBits = 3>
class FlatSet {
  struct Unit {};
  using Map = FlatMap<K, Unit, Hash, kPartitionBits>;

 public:
  static constexpr std::size_t kBatchWidth = Map::kBatchWidth;

  FlatSet() = default;
  FlatSet(std::initializer_list<K> keys) {
    for (const K& k : keys) insert(k);
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  bool insert(const K& key) { return map_.try_emplace(key).second; }
  bool erase(const K& key) { return map_.erase(key); }
  [[nodiscard]] bool contains(const K& key) const {
    return map_.contains(key);
  }
  [[nodiscard]] std::size_t count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  void prefetch(const K& key) const { map_.prefetch(key); }

  // inserted[i] = 1 when key i was new (duplicates within the batch
  // resolve in key order, exactly like sequential insert calls).
  void insert_batch(std::span<const K> keys,
                    std::span<std::uint8_t> inserted = {}) {
    units_.assign(keys.size(), Unit{});
    map_.insert_batch(keys, units_, inserted);
  }

  // Key iteration in insertion order (modulo swap-remove erases).
  class const_iterator {
   public:
    using value_type = K;
    using difference_type = std::ptrdiff_t;
    const_iterator() = default;
    explicit const_iterator(const typename Map::Entry* p) noexcept : p_(p) {}
    const K& operator*() const noexcept { return p_->key; }
    const K* operator->() const noexcept { return &p_->key; }
    const_iterator& operator++() noexcept {
      ++p_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator t = *this;
      ++p_;
      return t;
    }
    friend bool operator==(const_iterator a, const_iterator b) = default;

   private:
    const typename Map::Entry* p_ = nullptr;
  };
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(map_.empty() ? nullptr : &*map_.begin());
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(map_.empty() ? nullptr : &*map_.begin() + size());
  }

 private:
  Map map_;
  std::vector<Unit> units_;  // scratch for insert_batch
};

}  // namespace longtail::util
