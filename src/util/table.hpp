// Plain-text table rendering for the benchmark harness. Each bench binary
// reproduces one of the paper's tables/figures and prints it with this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace longtail::util {

// Formats n with thousands separators: 1234567 → "1,234,567".
std::string with_commas(std::uint64_t n);

// Formats a percentage with the given number of decimals: "12.3%".
std::string pct(double value, int decimals = 1);

// Formats a double with fixed decimals.
std::string fixed(double value, int decimals = 2);

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Renders with column alignment; numeric-looking cells right-align.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// A one-line section banner used by bench binaries.
std::string banner(const std::string& title);

}  // namespace longtail::util
