// Deterministic parallel-execution layer.
//
// A fixed-size worker pool plus `parallel_for` / `parallel_map` /
// `sharded_for` helpers designed so that results never depend on the
// number of threads:
//
//   * `parallel_for(n, body)` requires body(i) to touch only state owned
//     by index i (typically slot i of a preallocated output vector); the
//     iteration->thread assignment is then irrelevant to the result.
//   * `sharded_for` splits work into a *data-derived* shard count (never
//     the thread count) and combines shard results serially in shard
//     order, so stateful accumulation is reproducible bit-for-bit.
//
// The global pool is sized by the LONGTAIL_THREADS environment variable:
// unset = hardware_concurrency, 0 or 1 = serial (helpers run inline on the
// calling thread, no workers at all). Benchmarks and tests can re-size it
// at runtime with set_global_threads(); callers must not do so while a
// parallel section is in flight.
//
// Nested parallelism is safe but not amplified: a helper invoked from
// inside a worker thread runs serially inline, which both avoids deadlock
// (workers never block on other workers) and keeps determinism trivial.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace longtail::util {

class ThreadPool {
 public:
  // `threads` workers; 0 means no workers (helpers run serially).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // Enqueue a task. Tasks must not block waiting for other tasks.
  void submit(std::function<void()> task);

  // True when the calling thread is one of this process's pool workers.
  static bool on_worker_thread() noexcept;

  // Pool size implied by LONGTAIL_THREADS (see file comment).
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// The process-wide pool used by the helpers below.
ThreadPool& global_pool();

// Replace the global pool with one of `threads` workers (0/1 = serial).
// Not thread-safe against concurrently running parallel sections.
void set_global_threads(unsigned threads);

// Worker count of the global pool, clamped to >= 1 (i.e. the number of
// concurrent execution lanes, counting the calling thread when serial).
unsigned effective_threads();

namespace detail {

struct ForState {
  explicit ForState(std::size_t chunks) : errors(chunks) {}
  std::atomic<std::size_t> cursor{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;  // guarded by mutex
  std::vector<std::exception_ptr> errors;
};

// Rethrows the lowest-index captured exception, if any, so the surfaced
// error is independent of execution interleaving.
void rethrow_first(const std::vector<std::exception_ptr>& errors);

}  // namespace detail

// Runs body(i) for every i in [0, n). body(i) must only write state owned
// by i. `grain` is the minimum number of iterations per chunk (tune it up
// for very cheap bodies). Exceptions thrown by body propagate to the
// caller (lowest chunk index wins).
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 1) {
  if (n == 0) return;
  ThreadPool& pool = global_pool();
  const unsigned workers = pool.size();
  if (grain == 0) grain = 1;
  if (workers == 0 || ThreadPool::on_worker_thread() || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  const std::size_t max_chunks = static_cast<std::size_t>(workers) * 4;
  const std::size_t n_chunks =
      std::min((n + grain - 1) / grain, std::max<std::size_t>(max_chunks, 1));
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  auto state = std::make_shared<detail::ForState>(n_chunks);

  Body* body_ptr = &body;  // valid until every chunk is claimed (see below)
  auto drain = [state, body_ptr, n, chunk, n_chunks]() {
    for (;;) {
      const std::size_t c =
          state->cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) return;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) (*body_ptr)(i);
      } catch (...) {
        state->errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (++state->done == n_chunks) state->cv.notify_all();
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(workers, n_chunks > 1 ? n_chunks - 1 : 0);
  for (std::size_t i = 0; i < helpers; ++i) pool.submit(drain);
  drain();  // the calling thread participates

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done == n_chunks; });
  // All chunks are claimed and finished; leftover queued drain tasks will
  // see cursor >= n_chunks and never touch body again.
  detail::rethrow_first(state->errors);
}

// Maps fn over [0, n), returning results in index order. The result type
// must be default-constructible and assignable.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 1) {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

// Splits [0, n) into `n_shards` contiguous shards (clamped to n), runs
// shard_fn(shard_index, begin, end) -> S in parallel, then calls
// combine(S&&, shard_index) serially in ascending shard order. Because the
// shard count comes from the caller's data (never the thread count), the
// combined result is bit-identical for any LONGTAIL_THREADS.
template <typename ShardFn, typename Combine>
void sharded_for(std::size_t n, std::size_t n_shards, ShardFn&& shard_fn,
                 Combine&& combine) {
  if (n == 0) return;
  using S = std::decay_t<
      std::invoke_result_t<ShardFn&, std::size_t, std::size_t, std::size_t>>;
  n_shards = std::max<std::size_t>(1, std::min(n_shards, n));
  const std::size_t chunk = (n + n_shards - 1) / n_shards;
  std::vector<S> shards(n_shards);
  parallel_for(n_shards, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    shards[s] = shard_fn(s, begin, end);
  });
  for (std::size_t s = 0; s < n_shards; ++s) combine(std::move(shards[s]), s);
}

}  // namespace longtail::util
