#include "util/domain.hpp"

#include <algorithm>
#include <array>

namespace longtail::util {

namespace {

// Compact public-suffix list: the generic TLDs plus every multi-label
// suffix needed for the domains in the paper (com.br, co.uk, co.vu, …).
// Sorted for binary search.
constexpr std::array<std::string_view, 44> kSuffixes = {
    "biz",    "br",     "cc",      "co",      "co.jp",  "co.kr", "co.uk",
    "co.vu",  "com",    "com.au",  "com.br",  "com.cn", "com.mx",
    "com.tr", "com.tw", "de",      "edu",     "fr",     "gov",   "in",
    "info",   "io",     "it",      "jp",      "kr",     "me",    "mx",
    "net",    "net.br", "nl",      "org",     "org.br", "org.uk",
    "pl",     "pw",     "ru",      "tv",      "tw",     "ua",    "uk",
    "us",     "vu",     "ws",      "xyz",
};

bool suffix_known(std::string_view s) noexcept {
  return std::binary_search(kSuffixes.begin(), kSuffixes.end(), s);
}

}  // namespace

std::string_view url_host(std::string_view url) noexcept {
  if (const auto scheme = url.find("://"); scheme != std::string_view::npos)
    url.remove_prefix(scheme + 3);
  if (const auto at = url.find('@');
      at != std::string_view::npos && at < url.find('/'))
    url.remove_prefix(at + 1);
  const auto end = url.find_first_of("/?#");
  if (end != std::string_view::npos) url = url.substr(0, end);
  if (const auto colon = url.rfind(':');
      colon != std::string_view::npos &&
      url.find(']') == std::string_view::npos)
    url = url.substr(0, colon);
  return url;
}

bool is_public_suffix(std::string_view suffix) noexcept {
  return suffix_known(suffix);
}

std::string_view e2ld(std::string_view host) noexcept {
  if (host.empty()) return host;
  // Walk label boundaries from the right, find the longest known suffix.
  std::size_t suffix_start = std::string_view::npos;
  for (std::size_t pos = host.rfind('.'); pos != std::string_view::npos;
       pos = (pos == 0) ? std::string_view::npos : host.rfind('.', pos - 1)) {
    const std::string_view candidate = host.substr(pos + 1);
    if (suffix_known(candidate)) suffix_start = pos + 1;
    if (pos == 0) break;
  }
  if (suffix_known(host)) return host;  // host is itself a public suffix
  if (suffix_start == std::string_view::npos) {
    // Unknown TLD: fall back to last two labels.
    const auto last = host.rfind('.');
    if (last == std::string_view::npos) return host;
    const auto prev = host.rfind('.', last - 1);
    return prev == std::string_view::npos ? host : host.substr(prev + 1);
  }
  // One label to the left of the suffix.
  if (suffix_start < 2) return host;
  const auto label_end = suffix_start - 1;  // the '.' before the suffix
  const auto prev = host.rfind('.', label_end - 1);
  return prev == std::string_view::npos ? host : host.substr(prev + 1);
}

}  // namespace longtail::util
