// Deterministic pseudo-random number generation for the longtail library.
//
// All randomness in the library flows through `Rng`, seeded explicitly by the
// caller. No code in the library reads the wall clock or std::random_device,
// so every dataset, experiment, and benchmark is exactly reproducible from
// its seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace longtail::util {

// SplitMix64: used to expand a single 64-bit seed into a full generator
// state. Recommended by the xoshiro authors for exactly this purpose.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Value-semantics mixer: a well-spread 64-bit hash of x.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept : state_{} {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

// Convenience façade over Xoshiro256ss with the distributions the library
// needs. Methods are deliberately simple and branch-light; none allocate
// except where documented.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  // Derive an independent child stream; `stream_id` distinguishes children.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t s = seed_mix_ ^ (0xA24BAED4963EE407ULL * (stream_id + 1));
    return Rng(s, /*tag=*/0);
  }

  std::uint64_t next_u64() noexcept {
    seed_mix_ = gen_();
    return seed_mix_;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method for unbiased results.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    const std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Sample an index from an unnormalized non-negative weight vector.
  // O(n); for hot paths use DiscreteSampler below.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  // Exponential with given mean (> 0).
  double exponential(double mean) noexcept {
    double u = uniform01();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Standard normal via Box–Muller (no cached spare: keeps state simple).
  double normal(double mu, double sigma) noexcept;

  // Geometric-ish "burst" size >= 1 with mean approximately `mean`.
  std::uint32_t burst_size(double mean) noexcept;

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(i)]);
    }
  }

  Xoshiro256ss& engine() noexcept { return gen_; }

 private:
  Rng(std::uint64_t seed, int /*tag*/) noexcept : gen_(seed) {}
  Xoshiro256ss gen_;
  std::uint64_t seed_mix_ = 0;
};

// Independent per-item RNG substream: a generator that is a pure
// function of (seed, salt, index), so the values item `index` draws are
// the same whether items are processed serially or across N threads.
// `salt` namespaces the stream per call site (use a distinct tag per
// phase); this is the canonical keying pattern for parallel_for bodies
// (see docs/synth-chains.md and the synth generator).
[[nodiscard]] inline Rng substream(std::uint64_t seed, std::uint64_t salt,
                                   std::uint64_t index) noexcept {
  return Rng(mix64(seed ^ salt) ^
             mix64(index * 0x9E3779B97F4A7C15ULL + salt));
}

// Alias-method sampler for repeated draws from a fixed discrete
// distribution. O(n) construction, O(1) per sample (Walker/Vose).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace longtail::util
