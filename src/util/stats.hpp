// Small statistics toolkit used by the analysis modules: empirical CDFs,
// histograms, and top-k counting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace longtail::util {

// Empirical CDF over double-valued samples.
class EmpiricalCdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_n(double x, std::size_t n) {
    samples_.insert(samples_.end(), n, x);
  }

  // Absorb another CDF's samples (order-insensitive: finalize() sorts).
  void merge(EmpiricalCdf&& other) {
    if (samples_.empty()) {
      samples_ = std::move(other.samples_);
      return;
    }
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  // Must be called after all add()s and before queries.
  void finalize() { std::sort(samples_.begin(), samples_.end()); }

  // Fraction of samples <= x. Requires finalize().
  [[nodiscard]] double at(double x) const {
    if (samples_.empty()) return 0.0;
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  // p in [0,1] -> value at that quantile. Requires finalize().
  [[nodiscard]] double quantile(double p) const {
    if (samples_.empty()) return 0.0;
    const double pos = p * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  // Series of (x, cdf(x)) at the given x grid — convenient for printing
  // figure reproductions.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      const std::vector<double>& grid) const {
    std::vector<std::pair<double, double>> out;
    out.reserve(grid.size());
    for (double x : grid) out.emplace_back(x, at(x));
    return out;
  }

 private:
  std::vector<double> samples_;
};

// Counts occurrences of keys and reports the top-k.
template <typename Key>
class TopK {
 public:
  void add(const Key& k, std::uint64_t n = 1) { counts_[k] += n; }

  // Absorb another counter (commutative; top() sorts deterministically).
  void merge(const TopK& other) {
    for (const auto& [k, n] : other.counts_) counts_[k] += n;
  }

  [[nodiscard]] std::vector<std::pair<Key, std::uint64_t>> top(
      std::size_t k) const {
    std::vector<std::pair<Key, std::uint64_t>> v(counts_.begin(),
                                                 counts_.end());
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;  // deterministic tie-break
    });
    if (v.size() > k) v.resize(k);
    return v;
  }

  [[nodiscard]] std::uint64_t count(const Key& k) const {
    auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  [[nodiscard]] const std::unordered_map<Key, std::uint64_t>& raw() const {
    return counts_;
  }

 private:
  std::unordered_map<Key, std::uint64_t> counts_;
};

inline double percent(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace longtail::util
