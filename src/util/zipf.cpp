#include "util/zipf.hpp"

#include <cassert>
#include <cmath>

namespace longtail::util {

namespace {
// helper(x) = (exp(x) - 1) / x, numerically stable near 0.
double expm1_over_x(double x) noexcept {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x / 3.0);
}

// helper(x) = log1p(x) / x, numerically stable near 0.
double log1p_over_x(double x) noexcept {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x / 3.0);
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  // Constants per Hörmann & Derflinger: the sampling interval for the
  // H-integral includes a unit shift that carries the point mass at k = 1,
  // and the fast-acceptance threshold compares against
  // 2 - H⁻¹(H(2.5) - h(2)).
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  h_x1_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

// H(x) = integral of 1/t^s from 1 to x (plus constant), per Hörmann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions" (1996).
double ZipfSampler::h_integral(double x) const noexcept {
  const double log_x = std::log(x);
  return expm1_over_x((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::h_integral_inverse(double x) const noexcept {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // guard rounding
  return std::exp(log1p_over_x(t) * x);
}

double ZipfSampler::h(double x) const noexcept {
  return std::exp(-s_ * std::log(x));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  if (n_ == 1) return 1;
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform01() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1)
      k = 1;
    else if (k > n_)
      k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= h_x1_ || u >= h_integral(kd + 0.5) - h(kd)) return k;
  }
}

double ZipfSampler::approx_cdf(std::uint64_t k) const noexcept {
  if (k >= n_) return 1.0;
  // h_integral_x1_ already carries the -1 shift for the mass at k = 1.
  const double num = h_integral(static_cast<double>(k) + 0.5) - h_integral_x1_;
  const double den = h_integral_n_ - h_integral_x1_;
  return num / den;
}

}  // namespace longtail::util
