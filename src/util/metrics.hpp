// Process-global metrics registry: monotonic counters, gauges, and
// fixed-bucket latency histograms.
//
// The hot path is lock-free via per-thread shards: each thread is
// assigned one of kMetricShards padded slots on first use and only ever
// touches its own cache line (relaxed atomics keep overflow threads that
// share a slot correct). Reads combine the shards in ascending slot
// order — the same deterministic-combine philosophy as sharded_for — so a
// snapshot is a pure function of what was recorded, never of scheduling.
//
// Enabled via LONGTAIL_METRICS=1 (anything but "0"/"") or
// metrics::set_enabled(true); the perf_* binaries enable it
// programmatically so BENCH_*.json always carries the per-stage snapshot.
// When disabled, every LONGTAIL_METRIC_* macro is one branch on a cached
// bool: no registry lookup, no clock read, no shard write, and pipeline
// output stays bit-identical.
//
// Registered metric objects are never destroyed or moved (the registry
// hands out stable references that instrumentation caches in function-
// local statics), and reset_for_testing() zeroes values in place.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace longtail::util::metrics {

// Shard slots per metric. Threads beyond this share slots (atomics keep
// that correct); the pipeline runs far fewer concurrent threads.
inline constexpr std::size_t kMetricShards = 64;

bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// Index of the calling thread's shard slot (stable for the thread's
// lifetime; assigned round-robin on first use).
std::size_t shard_index() noexcept;

namespace detail {
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};
struct alignas(64) HistogramShard {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  // Sum in nanoseconds-as-integer to keep the combine exact and
  // order-independent (double accumulation would not be).
  std::atomic<std::uint64_t> sum_ns{0};
  // Exact extremes (ns), also integer so the combine is order-free.
  // UINT64_MAX min means "no samples in this shard".
  std::atomic<std::uint64_t> min_ns{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns{0};
};
}  // namespace detail

// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  // Combined value (shards summed in slot order).
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  std::array<detail::CounterShard, kMetricShards> shards_{};
};

// Last-writer-wins instantaneous value (set from one thread in practice).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Latency histogram over fixed power-of-two buckets: bucket b holds
// samples with value <= 2^b microseconds (last bucket is the overflow).
// Values are recorded in milliseconds (the unit the bench JSON uses).
class Histogram {
 public:
  void record_ms(double ms) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum_ms() const noexcept;
  [[nodiscard]] double mean_ms() const noexcept;
  // Exact smallest/largest recorded value in ms (0 when empty) — the
  // quantiles only report power-of-two bucket upper bounds, too coarse
  // for drift gating.
  [[nodiscard]] double min_ms() const noexcept;
  [[nodiscard]] double max_ms() const noexcept;
  // Upper bound (ms) of the bucket containing quantile q in [0,1].
  [[nodiscard]] double quantile_ms(double q) const noexcept;
  void reset() noexcept;

 private:
  std::array<detail::HistogramShard, kMetricShards> shards_{};
};

// Registry lookups: create-on-first-use, return a stable reference.
// Names are dot-separated lowercase paths, "subsystem.stage[.what]"
// (see docs/observability.md).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
// keys sorted by name; appended verbatim to the BENCH_*.json files.
std::string snapshot_json();

// Zeroes every registered metric in place (references stay valid).
void reset_for_testing();

// RAII timer recording its scope's wall time into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t start_ns_;
};

}  // namespace longtail::util::metrics

#define LONGTAIL_METRICS_CONCAT2(a, b) a##b
#define LONGTAIL_METRICS_CONCAT(a, b) LONGTAIL_METRICS_CONCAT2(a, b)

// Adds n to the named counter. The registry lookup happens once per call
// site (function-local static) and only if metrics are enabled.
#define LONGTAIL_METRIC_COUNT(name, n)                                   \
  do {                                                                   \
    if (::longtail::util::metrics::enabled()) {                          \
      static ::longtail::util::metrics::Counter&                        \
          LONGTAIL_METRICS_CONCAT(longtail_metric_counter_, __LINE__) = \
              ::longtail::util::metrics::counter(name);                  \
      LONGTAIL_METRICS_CONCAT(longtail_metric_counter_, __LINE__)       \
          .add(static_cast<std::uint64_t>(n));                           \
    }                                                                    \
  } while (0)

// Sets the named gauge to v.
#define LONGTAIL_METRIC_GAUGE(name, v)                                   \
  do {                                                                   \
    if (::longtail::util::metrics::enabled()) {                          \
      static ::longtail::util::metrics::Gauge&                          \
          LONGTAIL_METRICS_CONCAT(longtail_metric_gauge_, __LINE__) =   \
              ::longtail::util::metrics::gauge(name);                    \
      LONGTAIL_METRICS_CONCAT(longtail_metric_gauge_, __LINE__)         \
          .set(static_cast<double>(v));                                  \
    }                                                                    \
  } while (0)

// Records v (milliseconds) into the named histogram.
#define LONGTAIL_METRIC_RECORD_MS(name, v)                               \
  do {                                                                   \
    if (::longtail::util::metrics::enabled()) {                          \
      static ::longtail::util::metrics::Histogram&                      \
          LONGTAIL_METRICS_CONCAT(longtail_metric_hist_, __LINE__) =    \
              ::longtail::util::metrics::histogram(name);                \
      LONGTAIL_METRICS_CONCAT(longtail_metric_hist_, __LINE__)          \
          .record_ms(static_cast<double>(v));                            \
    }                                                                    \
  } while (0)

// Times the rest of the enclosing scope into the named histogram.
#define LONGTAIL_METRIC_TIMER(name)                                          \
  std::optional<::longtail::util::metrics::ScopedTimer> LONGTAIL_METRICS_CONCAT( \
      longtail_metric_timer_, __LINE__);                                     \
  if (::longtail::util::metrics::enabled()) {                                \
    static ::longtail::util::metrics::Histogram& LONGTAIL_METRICS_CONCAT(   \
        longtail_metric_timer_hist_, __LINE__) =                             \
        ::longtail::util::metrics::histogram(name);                          \
    LONGTAIL_METRICS_CONCAT(longtail_metric_timer_, __LINE__)               \
        .emplace(LONGTAIL_METRICS_CONCAT(longtail_metric_timer_hist_,       \
                                         __LINE__));                         \
  }
