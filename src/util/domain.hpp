// URL / domain utilities: parsing a URL into its host and extracting the
// effective second-level domain (e2LD).
//
// The paper aggregates download URLs by e2LD (e.g. "dl.cdn.softonic.com" →
// "softonic.com", "foo.baixaki.com.br" → "baixaki.com.br"). We implement
// e2LD extraction over a compact public-suffix list covering the suffixes
// that appear in the paper's tables plus the common generic/country TLDs.
#pragma once

#include <string>
#include <string_view>

namespace longtail::util {

// Extracts the host from a URL ("http://a.b.com:80/x?y" → "a.b.com").
// Returns the input unchanged if it does not look like a URL.
std::string_view url_host(std::string_view url) noexcept;

// True if `suffix` is a registered public suffix ("com", "co.uk", …).
bool is_public_suffix(std::string_view suffix) noexcept;

// Effective second-level domain of a hostname: the public suffix plus one
// label. "dl.softonic.com" → "softonic.com"; "x.y.co.uk" → "y.co.uk".
// A bare public suffix or empty host is returned unchanged.
std::string_view e2ld(std::string_view host) noexcept;

// Convenience: e2LD straight from a URL.
inline std::string_view url_e2ld(std::string_view url) noexcept {
  return e2ld(url_host(url));
}

}  // namespace longtail::util
