#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace longtail::util {

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string pct(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if ((c < '0' || c > '9') && c != '.' && c != ',' && c != '%' && c != '-' &&
        c != '+' && c != 'x')
      return false;
  return true;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out.push_back('|');
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      out.push_back(' ');
      if (looks_numeric(cell)) {
        out.append(pad, ' ');
        out.append(cell);
      } else {
        out.append(cell);
        out.append(pad, ' ');
      }
      out.append(" |");
    }
    out.push_back('\n');
  };

  std::string sep = "+";
  for (std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep.push_back('+');
  }
  sep.push_back('\n');

  std::string out = sep;
  emit_row(headers_, out);
  out += sep;
  for (const auto& row : rows_) emit_row(row, out);
  out += sep;
  return out;
}

std::string banner(const std::string& title) {
  std::string line(title.size() + 4, '=');
  return line + "\n= " + title + " =\n" + line + "\n";
}

}  // namespace longtail::util
