#include "util/csv.hpp"

#include <sstream>

namespace longtail::util {

DelimitedWriter::DelimitedWriter(const std::string& path, char delimiter)
    : out_(path), delimiter_(delimiter) {}

std::string DelimitedWriter::escape(const std::string& cell) const {
  if (delimiter_ == '\t') return cell;  // TSV: names are tab/newline-free
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void DelimitedWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_.put(delimiter_);
    out_ << escape(cells[i]);
  }
  out_.put('\n');
}

DelimitedReader::DelimitedReader(const std::string& path, char delimiter)
    : in_(path), delimiter_(delimiter) {}

bool DelimitedReader::read_row(std::vector<std::string>& cells) {
  cells.clear();
  std::string line;
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  if (delimiter_ == '\t') {
    std::size_t start = 0;
    while (true) {
      const auto pos = line.find('\t', start);
      cells.push_back(line.substr(start, pos - start));
      if (pos == std::string::npos) break;
      start = pos + 1;
    }
    return true;
  }

  // CSV with quote handling.
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter_) {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return true;
}

}  // namespace longtail::util
