#include "util/profile.hpp"

#include <time.h>

#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace longtail::util::profile {

namespace {

std::atomic<bool> g_enabled{false};

// Worker busy accounting. Plain relaxed atomics: totals are summed across
// all workers, and readers only ever see a consistent "so far" value.
std::atomic<std::uint64_t> g_pool_tasks{0};
std::atomic<std::uint64_t> g_pool_busy_ns{0};
std::atomic<std::uint64_t> g_pool_tasks_published{0};

std::uint64_t clock_ns(clockid_t id) noexcept {
  struct timespec ts{};
  if (::clock_gettime(id, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

double statm_rss_mb() noexcept {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long size = 0, resident = 0;
  const int n = std::fscanf(f, "%ld %ld", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0.0;
  static const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident) * static_cast<double>(page) /
         (1024.0 * 1024.0);
}

// The sampler whose summaries publish_metrics reports: first constructed
// wins, cleared when it is destroyed (the env-created one lives to exit).
std::atomic<Sampler*> g_active_sampler{nullptr};

Sampler*& env_sampler_slot() {
  static Sampler* sampler = nullptr;
  return sampler;
}

void stop_env_sampler() {
  if (Sampler* s = env_sampler_slot()) s->stop();
}

bool init_from_env() {
  const char* env = std::getenv("LONGTAIL_PROFILE");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "0")
    return false;
  // Force trace env init first: if tracing is on, its atexit flush is
  // then registered before our sampler stop, so (LIFO) the sampler is
  // stopped — and its counter series emitted — before the flush renders.
  trace::enabled();
  g_enabled.store(true, std::memory_order_relaxed);
  // A numeric value > 1 selects the sampling interval in milliseconds.
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  const std::uint64_t interval_ms =
      (end != env && *end == '\0' && v > 1) ? static_cast<std::uint64_t>(v)
                                            : 50;
  env_sampler_slot() = new Sampler(interval_ms);  // leaked: lives to exit
  std::atexit(stop_env_sampler);
  return true;
}

}  // namespace

bool enabled() noexcept {
  static const bool env_enabled = init_from_env();
  (void)env_enabled;
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled();  // force env init first so it cannot override a later set
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t thread_cpu_ns() noexcept {
  return clock_ns(CLOCK_THREAD_CPUTIME_ID);
}

std::uint64_t process_cpu_ns() noexcept {
  return clock_ns(CLOCK_PROCESS_CPUTIME_ID);
}

double peak_rss_mb() noexcept {
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

ResourceSample sample_resources() noexcept {
  ResourceSample s;
  s.rss_mb = statm_rss_mb();
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  s.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  s.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  s.voluntary_ctx = static_cast<std::uint64_t>(ru.ru_nvcsw);
  s.involuntary_ctx = static_cast<std::uint64_t>(ru.ru_nivcsw);
  return s;
}

void note_worker_task(std::uint64_t busy_ns) noexcept {
  g_pool_tasks.fetch_add(1, std::memory_order_relaxed);
  g_pool_busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
}

PoolAccounting pool_accounting() noexcept {
  PoolAccounting acc;
  acc.tasks = g_pool_tasks.load(std::memory_order_relaxed);
  acc.busy_ns = g_pool_busy_ns.load(std::memory_order_relaxed);
  return acc;
}

void reset_pool_accounting_for_testing() noexcept {
  g_pool_tasks.store(0, std::memory_order_relaxed);
  g_pool_busy_ns.store(0, std::memory_order_relaxed);
  g_pool_tasks_published.store(0, std::memory_order_relaxed);
}

// ---- Sampler --------------------------------------------------------------

struct Sampler::Impl {
  struct Point {
    std::uint64_t ts_ns = 0;
    ResourceSample sample;
  };

  std::mutex mutex;
  std::condition_variable cv;
  bool stop_requested = false;
  std::vector<Point> points;
  std::atomic<std::uint64_t> samples{0};
  std::atomic<double> max_rss_mb{0.0};
  std::uint64_t interval_ms = 50;
  std::thread thread;
  bool stopped = false;

  void take_sample() {
    Point p;
    p.ts_ns = trace::timestamp_ns();
    p.sample = sample_resources();
    samples.fetch_add(1, std::memory_order_relaxed);
    double seen = max_rss_mb.load(std::memory_order_relaxed);
    while (p.sample.rss_mb > seen &&
           !max_rss_mb.compare_exchange_weak(seen, p.sample.rss_mb,
                                             std::memory_order_relaxed)) {
    }
    std::lock_guard<std::mutex> lock(mutex);
    points.push_back(p);
  }

  void loop() {
    for (;;) {
      take_sample();
      std::unique_lock<std::mutex> lock(mutex);
      if (cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                      [&] { return stop_requested; }))
        return;
    }
  }
};

Sampler::Sampler(std::uint64_t interval_ms) : impl_(new Impl) {
  impl_->interval_ms = interval_ms == 0 ? 1 : interval_ms;
  Sampler* expected = nullptr;
  g_active_sampler.compare_exchange_strong(expected, this,
                                           std::memory_order_relaxed);
  impl_->thread = std::thread([this] { impl_->loop(); });
}

Sampler::~Sampler() {
  stop();
  Sampler* self = this;
  g_active_sampler.compare_exchange_strong(self, nullptr,
                                           std::memory_order_relaxed);
  delete impl_;
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
    impl_->stop_requested = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  // The sampling thread is gone: emit the buffered series as trace
  // counter events from this thread, so nothing ever appends to a trace
  // buffer concurrently with a flush.
  if (!trace::enabled()) return;
  for (const auto& p : impl_->points) {
    trace::counter_at("profile.rss_mb", p.ts_ns, p.sample.rss_mb);
    trace::counter_at("profile.minor_faults", p.ts_ns,
                      static_cast<double>(p.sample.minor_faults));
    trace::counter_at("profile.major_faults", p.ts_ns,
                      static_cast<double>(p.sample.major_faults));
    trace::counter_at("profile.voluntary_ctx", p.ts_ns,
                      static_cast<double>(p.sample.voluntary_ctx));
    trace::counter_at("profile.involuntary_ctx", p.ts_ns,
                      static_cast<double>(p.sample.involuntary_ctx));
  }
}

std::uint64_t Sampler::samples() const noexcept {
  return impl_->samples.load(std::memory_order_relaxed);
}

double Sampler::max_rss_seen_mb() const noexcept {
  return impl_->max_rss_mb.load(std::memory_order_relaxed);
}

void publish_metrics() {
  if (!metrics::enabled()) return;
  metrics::gauge("profile.peak_rss_mb").set(peak_rss_mb());
  metrics::gauge("profile.cpu_ms")
      .set(static_cast<double>(process_cpu_ns()) / 1e6);
  const auto acc = pool_accounting();
  metrics::gauge("profile.pool.busy_ms")
      .set(static_cast<double>(acc.busy_ns) / 1e6);
  // Counter semantics are monotone: publish only the delta since the last
  // publish so repeated calls stay correct.
  const std::uint64_t published =
      g_pool_tasks_published.exchange(acc.tasks, std::memory_order_relaxed);
  if (acc.tasks > published)
    metrics::counter("profile.pool.tasks").add(acc.tasks - published);
  if (Sampler* s = g_active_sampler.load(std::memory_order_relaxed)) {
    metrics::gauge("profile.sampler.samples")
        .set(static_cast<double>(s->samples()));
    metrics::gauge("profile.sampler.max_rss_mb").set(s->max_rss_seen_mb());
  }
}

}  // namespace longtail::util::profile
