// Simulation time.
//
// The paper's observation window runs January–August 2014 (seven monthly
// collection periods, January through July, with a test window extending
// into August). We count time in seconds from 2014-01-01 00:00:00 UTC and
// model months as the real calendar months of 2014.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace longtail::model {

using Timestamp = std::int64_t;  // seconds since 2014-01-01 00:00:00 UTC

constexpr std::int64_t kSecondsPerDay = 86'400;

// Months of the study, indexed 0 = January 2014.
enum class Month : std::uint8_t {
  kJanuary = 0,
  kFebruary,
  kMarch,
  kApril,
  kMay,
  kJune,
  kJuly,
  kAugust,
};

inline constexpr std::size_t kNumCollectionMonths = 7;  // Jan..Jul
inline constexpr std::size_t kNumCalendarMonths = 8;    // Jan..Aug

// Day counts for Jan..Aug 2014 (not a leap year).
inline constexpr std::array<int, kNumCalendarMonths> kDaysInMonth = {
    31, 28, 31, 30, 31, 30, 31, 31};

// First second of each month, plus one-past-the-end sentinel.
constexpr std::array<Timestamp, kNumCalendarMonths + 1> month_starts() {
  std::array<Timestamp, kNumCalendarMonths + 1> out{};
  Timestamp t = 0;
  for (std::size_t m = 0; m < kNumCalendarMonths; ++m) {
    out[m] = t;
    t += static_cast<Timestamp>(kDaysInMonth[m]) * kSecondsPerDay;
  }
  out[kNumCalendarMonths] = t;
  return out;
}

inline constexpr auto kMonthStart = month_starts();

constexpr Timestamp month_begin(Month m) {
  return kMonthStart[static_cast<std::size_t>(m)];
}
constexpr Timestamp month_end(Month m) {
  return kMonthStart[static_cast<std::size_t>(m) + 1];
}

// Month containing timestamp t; clamps to [January, August].
constexpr Month month_of(Timestamp t) {
  for (std::size_t m = kNumCalendarMonths; m-- > 0;)
    if (t >= kMonthStart[m]) return static_cast<Month>(m);
  return Month::kJanuary;
}

constexpr std::int64_t day_of(Timestamp t) { return t / kSecondsPerDay; }

constexpr std::string_view month_name(Month m) {
  constexpr std::array<std::string_view, kNumCalendarMonths> names = {
      "January", "February", "March", "April", "May", "June", "July",
      "August"};
  return names[static_cast<std::size_t>(m)];
}

constexpr std::string_view month_abbrev(Month m) {
  constexpr std::array<std::string_view, kNumCalendarMonths> names = {
      "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug"};
  return names[static_cast<std::size_t>(m)];
}

}  // namespace longtail::model
