// Label vocabulary: ground-truth verdicts (§II-B), malware behaviour types
// (§II-C, Table II), and process categories (§V-A).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace longtail::model {

// Final verdict assigned by the ground-truth labeler (§II-B). "Likely"
// labels exist but are excluded from most measurements, as in the paper.
enum class Verdict : std::uint8_t {
  kBenign = 0,
  kLikelyBenign,
  kMalicious,
  kLikelyMalicious,
  kUnknown,
};
inline constexpr std::size_t kNumVerdicts = 5;

constexpr std::string_view to_string(Verdict v) {
  constexpr std::array<std::string_view, kNumVerdicts> names = {
      "benign", "likely-benign", "malicious", "likely-malicious", "unknown"};
  return names[static_cast<std::size_t>(v)];
}

// Malware behaviour type (Table II). kUndefined covers generic labels
// (e.g. McAfee's Artemis) and labels with no mapping.
enum class MalwareType : std::uint8_t {
  kDropper = 0,
  kPup,
  kAdware,
  kTrojan,
  kBanker,
  kBot,
  kFakeAv,
  kRansomware,
  kWorm,
  kSpyware,
  kUndefined,
};
inline constexpr std::size_t kNumMalwareTypes = 11;

constexpr std::string_view to_string(MalwareType t) {
  constexpr std::array<std::string_view, kNumMalwareTypes> names = {
      "dropper", "pup",        "adware", "trojan", "banker", "bot",
      "fakeav",  "ransomware", "worm",   "spyware", "undefined"};
  return names[static_cast<std::size_t>(t)];
}

constexpr std::optional<MalwareType> malware_type_from_string(
    std::string_view s) {
  for (std::size_t i = 0; i < kNumMalwareTypes; ++i) {
    const auto t = static_cast<MalwareType>(i);
    if (to_string(t) == s) return t;
  }
  return std::nullopt;
}

// Type specificity for the §II-C "Specificity" conflict-resolution rule:
// higher = more specific. trojan and undefined are the generic buckets AV
// engines use when the true behaviour is unknown.
constexpr int specificity(MalwareType t) {
  switch (t) {
    case MalwareType::kUndefined: return 0;
    case MalwareType::kTrojan: return 1;
    case MalwareType::kDropper: return 2;
    case MalwareType::kAdware: return 2;
    case MalwareType::kPup: return 2;
    case MalwareType::kWorm: return 3;
    case MalwareType::kBot: return 3;
    case MalwareType::kSpyware: return 3;
    case MalwareType::kBanker: return 4;
    case MalwareType::kFakeAv: return 4;
    case MalwareType::kRansomware: return 4;
  }
  return 0;
}

// Broad process categories studied in §V-A (Table X).
enum class ProcessCategory : std::uint8_t {
  kBrowser = 0,
  kWindows,
  kJava,
  kAcrobatReader,
  kOther,
};
inline constexpr std::size_t kNumProcessCategories = 5;

constexpr std::string_view to_string(ProcessCategory c) {
  constexpr std::array<std::string_view, kNumProcessCategories> names = {
      "Browsers", "Windows Processes", "Java", "Acrobat Reader",
      "All other processes"};
  return names[static_cast<std::size_t>(c)];
}

// Browser families (Table XI).
enum class BrowserKind : std::uint8_t {
  kFirefox = 0,
  kChrome,
  kOpera,
  kSafari,
  kInternetExplorer,
  kNotABrowser,
};
inline constexpr std::size_t kNumBrowserKinds = 5;

constexpr std::string_view to_string(BrowserKind b) {
  constexpr std::array<std::string_view, 6> names = {
      "Firefox", "Chrome", "Opera", "Safari", "IE", "-"};
  return names[static_cast<std::size_t>(b)];
}

}  // namespace longtail::model
