// The 5-tuple download event (§II-A): (file, machine, process, URL, time),
// plus the per-entity metadata records attached by the vendor's analysis
// infrastructure (size, signer, packer, …).
#pragma once

#include <cstdint>

#include "model/ids.hpp"
#include "model/labels.hpp"
#include "model/time.hpp"
#include "util/hash.hpp"

namespace longtail::model {

struct DownloadEvent {
  FileId file;
  MachineId machine;
  ProcessId process;
  UrlId url;
  Timestamp time = 0;
  // The agent only reports files that were executed; retained as a flag so
  // the collection-server filter (§II-A) is an observable code path.
  bool executed = true;
};

// Static metadata for a downloaded file, as the vendor's infrastructure
// would report it. Contains no verdict: labeling is a separate concern
// (groundtruth::Labeler).
struct FileMeta {
  util::Digest sha;         // content digest (identity)
  std::uint64_t size = 0;   // bytes
  bool is_signed = false;
  SignerId signer;          // invalid unless is_signed
  CaId ca;                  // invalid unless is_signed
  bool is_packed = false;
  PackerId packer;          // invalid unless is_packed
};

// Static metadata for a downloading process.
struct ProcessMeta {
  util::Digest sha;
  // On-disk executable name, interned in Corpus::process_names. The
  // category/browser fields below are the *generator's* intent; the
  // analysis modules re-derive categories from the name plus the benign
  // whitelist, as the paper does (§V-A), so masquerading malware is
  // handled the same way.
  std::uint32_t name = 0;
  ProcessCategory category = ProcessCategory::kOther;
  BrowserKind browser = BrowserKind::kNotABrowser;
  bool is_signed = false;
  SignerId signer;
  CaId ca;
  bool is_packed = false;
  PackerId packer;
};

struct UrlMeta {
  DomainId domain;
  // Alexa rank of the e2LD; 0 means unranked.
  std::uint32_t alexa_rank = 0;
};

struct DomainMeta {
  std::uint32_t alexa_rank = 0;  // 0 = unranked
  bool on_gsb = false;           // Google Safe Browsing hit
  bool on_private_blacklist = false;
  bool on_curated_whitelist = false;
};

}  // namespace longtail::model
