// Strongly-typed dense entity ids.
//
// Files, machines, processes, URLs, domains, signers, CAs, and packers are
// all identified by dense 32-bit ordinals into their respective pools.
// Wrapping them in distinct types prevents the classic "passed a FileId
// where a MachineId was expected" bug at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace longtail::model {

template <typename Tag>
struct Id {
  using underlying = std::uint32_t;
  static constexpr underlying kInvalidValue =
      std::numeric_limits<underlying>::max();

  underlying value = kInvalidValue;

  constexpr Id() = default;
  explicit constexpr Id(underlying v) noexcept : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalidValue;
  }
  [[nodiscard]] constexpr underlying raw() const noexcept { return value; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct FileTag {};
struct MachineTag {};
struct ProcessTag {};
struct UrlTag {};
struct DomainTag {};
struct SignerTag {};
struct CaTag {};
struct PackerTag {};
struct FamilyTag {};

using FileId = Id<FileTag>;
using MachineId = Id<MachineTag>;
using ProcessId = Id<ProcessTag>;
using UrlId = Id<UrlTag>;
using DomainId = Id<DomainTag>;
using SignerId = Id<SignerTag>;
using CaId = Id<CaTag>;
using PackerId = Id<PackerTag>;
using FamilyId = Id<FamilyTag>;

}  // namespace longtail::model

template <typename Tag>
struct std::hash<longtail::model::Id<Tag>> {
  std::size_t operator()(longtail::model::Id<Tag> id) const noexcept {
    // Fibonacci hashing spreads dense ordinals across buckets.
    return static_cast<std::size_t>(id.raw()) * 0x9E3779B97F4A7C15ULL;
  }
};
