#include "features/features.hpp"

#include "analysis/procname.hpp"

namespace longtail::features {

namespace {

using model::ProcessCategory;
using model::Verdict;

std::string_view process_type_value(const analysis::AnnotatedCorpus& a,
                                    model::ProcessId p) {
  // The paper's rules reference both the benign category ("downloading
  // process is Acrobat Reader") and the process's standing ("downloading
  // process is benign"); encoding the category for known-benign processes
  // and coarse labels otherwise supports both kinds of test.
  switch (a.verdict(p)) {
    case Verdict::kBenign:
      switch (analysis::categorize_by_name(a.corpus->process_name(p))
                  .category) {
        case ProcessCategory::kBrowser: return "browser";
        case ProcessCategory::kWindows: return "windows-process";
        case ProcessCategory::kJava: return "java";
        case ProcessCategory::kAcrobatReader: return "acrobat-reader";
        case ProcessCategory::kOther: return "other-benign";
      }
      return "other-benign";
    case Verdict::kLikelyBenign: return "likely-benign-process";
    case Verdict::kMalicious: return "malicious-process";
    case Verdict::kLikelyMalicious: return "likely-malicious-process";
    case Verdict::kUnknown: return "unknown-process";
  }
  return "unknown-process";
}

}  // namespace

std::string_view alexa_bucket(std::uint32_t rank) {
  if (rank == 0) return "unranked";
  if (rank <= 1'000) return "top-1k";
  if (rank <= 10'000) return "1k-10k";
  if (rank <= 100'000) return "10k-100k";
  if (rank <= 1'000'000) return "100k-1M";
  return "beyond-1M";
}

FeatureVector extract_features(const analysis::AnnotatedCorpus& a,
                               const model::DownloadEvent& e,
                               FeatureSpace& space) {
  const auto& file = a.corpus->files[e.file.raw()];
  const auto& proc = a.corpus->processes[e.process.raw()];
  const auto& url = a.corpus->urls[e.url.raw()];

  auto signer_name = [&](bool is_signed, model::SignerId signer) {
    return is_signed ? a.corpus->signer_names.at(signer.raw())
                     : std::string_view("not-signed");
  };
  auto ca_name = [&](bool is_signed, model::CaId ca) {
    return is_signed ? a.corpus->ca_names.at(ca.raw())
                     : std::string_view("no-ca");
  };
  auto packer_name = [&](bool is_packed, model::PackerId packer) {
    return is_packed ? a.corpus->packer_names.at(packer.raw())
                     : std::string_view("not-packed");
  };

  FeatureVector x;
  auto set = [&](Feature f, std::string_view value) {
    x.values[static_cast<std::size_t>(f)] = space.intern(f, value);
  };
  set(Feature::kFileSigner, signer_name(file.is_signed, file.signer));
  set(Feature::kFileCa, ca_name(file.is_signed, file.ca));
  set(Feature::kFilePacker, packer_name(file.is_packed, file.packer));
  set(Feature::kProcessSigner, signer_name(proc.is_signed, proc.signer));
  set(Feature::kProcessCa, ca_name(proc.is_signed, proc.ca));
  set(Feature::kProcessPacker, packer_name(proc.is_packed, proc.packer));
  set(Feature::kProcessType, process_type_value(a, e.process));
  set(Feature::kAlexaBucket, alexa_bucket(url.alexa_rank));
  return x;
}

}  // namespace longtail::features
