#include "features/dataset.hpp"

#include <algorithm>
#include <unordered_map>

#include "telemetry/scan.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace longtail::features {

namespace {

using model::Verdict;

// First event of each file within [begin, end), in corpus (time) order.
// Shards fold time-ordered slices and combines run in ascending shard
// order, so try_emplace keeps the earliest event index — same first-wins
// result as the serial pass.
std::unordered_map<std::uint32_t, std::uint32_t> first_events_in(
    const analysis::AnnotatedCorpus& a, model::Timestamp begin,
    model::Timestamp end) {
  using FirstMap = std::unordered_map<std::uint32_t, std::uint32_t>;
  const auto lo = telemetry::lower_bound_time(*a.corpus, begin);
  const auto hi = telemetry::lower_bound_time(*a.corpus, end);
  return telemetry::scan_reduce(
      *a.corpus, lo, hi, [] { return FirstMap{}; },
      [](FirstMap& first, const auto& e) {
        first.try_emplace(e.file().raw(),
                          static_cast<std::uint32_t>(e.index()));
      },
      [](FirstMap& total, FirstMap&& shard) {
        for (const auto& [file, i] : shard) total.try_emplace(file, i);
      },
      "features.first_events");
}

// Deterministic instance order regardless of hash-map iteration.
void sort_by_file(std::vector<Instance>& v) {
  std::sort(v.begin(), v.end(), [](const Instance& a, const Instance& b) {
    return a.file < b.file;
  });
}

}  // namespace

std::vector<Instance> labeled_instances(const analysis::AnnotatedCorpus& a,
                                        FeatureSpace& space,
                                        model::Timestamp begin,
                                        model::Timestamp end) {
  std::vector<Instance> out;
  for (const auto& [file, event_index] : first_events_in(a, begin, end)) {
    const auto v = a.labels.file_verdicts[file];
    if (v != Verdict::kBenign && v != Verdict::kMalicious) continue;
    out.push_back(Instance{
        extract_features(a, a.corpus->events[event_index], space),
        v == Verdict::kMalicious, model::FileId{file}});
  }
  sort_by_file(out);
  return out;
}

WindowDataset build_window_dataset(const analysis::AnnotatedCorpus& a,
                                   FeatureSpace& space, model::Month train,
                                   model::Month test, WindowOptions options) {
  LONGTAIL_TRACE_SPAN("features.build_window_dataset");
  LONGTAIL_METRIC_TIMER("features.build_window_dataset_ms");
  WindowDataset out;

  const auto train_first =
      first_events_in(a, model::month_begin(train), model::month_end(train));
  const auto test_first =
      first_events_in(a, model::month_begin(test), model::month_end(test));

  for (const auto& [file, event_index] : train_first) {
    const auto v = a.labels.file_verdicts[file];
    bool is_label = v == Verdict::kBenign || v == Verdict::kMalicious;
    bool malicious = v == Verdict::kMalicious;
    if (!is_label && options.include_likely_as_labels &&
        (v == Verdict::kLikelyBenign || v == Verdict::kLikelyMalicious)) {
      is_label = true;
      malicious = v == Verdict::kLikelyMalicious;
    }
    if (!is_label) continue;
    out.train.push_back(Instance{
        extract_features(a, a.corpus->events[event_index], space),
        malicious, model::FileId{file}});
  }

  for (const auto& [file, event_index] : test_first) {
    // The intersection between training and test downloads must be empty.
    if (train_first.contains(file)) {
      ++out.excluded_overlap;
      continue;
    }
    const auto v = a.labels.file_verdicts[file];
    const auto& event = a.corpus->events[event_index];
    if (v == Verdict::kBenign || v == Verdict::kMalicious) {
      out.test.push_back(Instance{extract_features(a, event, space),
                                  v == Verdict::kMalicious,
                                  model::FileId{file}});
    } else if (v == Verdict::kUnknown) {
      out.unknowns.push_back(Instance{extract_features(a, event, space),
                                      false, model::FileId{file}});
    }
  }
  sort_by_file(out.train);
  sort_by_file(out.test);
  sort_by_file(out.unknowns);
  LONGTAIL_METRIC_COUNT("features.train_instances", out.train.size());
  LONGTAIL_METRIC_COUNT("features.test_instances", out.test.size());
  LONGTAIL_METRIC_COUNT("features.unknown_instances", out.unknowns.size());
  return out;
}

}  // namespace longtail::features
