// Train/test window construction (§VI-D):
//   * training set  — known benign/malicious files first observed during
//                     T_tr;
//   * test set      — known benign/malicious files from T_ts, excluding
//                     any file already seen in training (the paper ensures
//                     an empty intersection);
//   * unknown set   — files from T_ts with no ground truth, to be labeled
//                     by the learned rules.
// Each file contributes one instance, built from its first download event
// inside the window.
#pragma once

#include <vector>

#include "features/features.hpp"
#include "model/time.hpp"

namespace longtail::features {

struct WindowDataset {
  std::vector<Instance> train;
  std::vector<Instance> test;
  std::vector<Instance> unknowns;  // `malicious` flag is meaningless here
  std::size_t excluded_overlap = 0;  // test files dropped (seen in training)
};

struct WindowOptions {
  // The paper excludes likely-benign / likely-malicious files from
  // training because of their noise (§III). Setting this true injects
  // them as full labels — the ablation that quantifies the exclusion.
  bool include_likely_as_labels = false;
};

WindowDataset build_window_dataset(const analysis::AnnotatedCorpus& a,
                                   FeatureSpace& space, model::Month train,
                                   model::Month test,
                                   WindowOptions options = {});

// All labeled instances over an arbitrary [begin, end) time range — used
// by benchmarks that train on more than one month.
std::vector<Instance> labeled_instances(const analysis::AnnotatedCorpus& a,
                                        FeatureSpace& space,
                                        model::Timestamp begin,
                                        model::Timestamp end);

}  // namespace longtail::features
