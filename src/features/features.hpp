// Table XV: the eight easy-to-measure categorical features used by the
// rule-based classifier (§VI-B):
//
//   file signer / file CA / file packer — from static file analysis;
//   process signer / CA / packer / type — properties of the downloading
//                                         process;
//   Alexa bucket — the rank bucket of the download domain.
//
// Every feature is categorical. Absence is a first-class value
// ("not-signed", "not-packed", "unranked") — the paper's example rules
// test for it explicitly (e.g. "IF file is not signed AND downloading
// process is Acrobat Reader -> malicious").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/annotated.hpp"
#include "model/event.hpp"
#include "util/interner.hpp"

namespace longtail::features {

enum class Feature : std::uint8_t {
  kFileSigner = 0,
  kFileCa,
  kFilePacker,
  kProcessSigner,
  kProcessCa,
  kProcessPacker,
  kProcessType,
  kAlexaBucket,
};
inline constexpr std::size_t kNumFeatures = 8;

constexpr std::string_view to_string(Feature f) {
  constexpr std::array<std::string_view, kNumFeatures> names = {
      "file's signer",          "file's CA",
      "file's packer",          "downloading process's signer",
      "downloading process's CA", "downloading process's packer",
      "downloading process's type", "Alexa rank of file's URL"};
  return names[static_cast<std::size_t>(f)];
}

// A feature vector: one interned value id per feature.
struct FeatureVector {
  std::array<std::uint32_t, kNumFeatures> values{};

  [[nodiscard]] std::uint32_t at(Feature f) const {
    return values[static_cast<std::size_t>(f)];
  }
  friend bool operator==(const FeatureVector&, const FeatureVector&) = default;
};

// Per-feature value vocabulary. One space is shared across training, test,
// and unknown datasets so value ids are comparable.
class FeatureSpace {
 public:
  std::uint32_t intern(Feature f, std::string_view value) {
    return values_[static_cast<std::size_t>(f)].intern(value);
  }
  [[nodiscard]] std::string_view name(Feature f, std::uint32_t id) const {
    return values_[static_cast<std::size_t>(f)].at(id);
  }
  [[nodiscard]] std::size_t cardinality(Feature f) const {
    return values_[static_cast<std::size_t>(f)].size();
  }

 private:
  std::array<util::StringInterner, kNumFeatures> values_;
};

// One labeled training/test instance: the feature vector of a file's first
// download event in the window.
struct Instance {
  FeatureVector x;
  bool malicious = false;  // ground-truth class (meaningless for unknowns)
  model::FileId file;
};

// Maps the Alexa rank of a domain to its bucket value (the paper's rules
// use ranges such as "between 10,000 to 100,000" and "above 100K").
std::string_view alexa_bucket(std::uint32_t rank);

// Extracts the feature vector of one download event.
FeatureVector extract_features(const analysis::AnnotatedCorpus& a,
                               const model::DownloadEvent& e,
                               FeatureSpace& space);

}  // namespace longtail::features
