
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_procname_test.cpp" "tests/CMakeFiles/longtail_tests.dir/analysis_procname_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/analysis_procname_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/longtail_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/analysis_unit_test.cpp" "tests/CMakeFiles/longtail_tests.dir/analysis_unit_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/analysis_unit_test.cpp.o.d"
  "/root/repo/tests/avclass_test.cpp" "tests/CMakeFiles/longtail_tests.dir/avclass_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/avclass_test.cpp.o.d"
  "/root/repo/tests/avtype_test.cpp" "tests/CMakeFiles/longtail_tests.dir/avtype_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/avtype_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/longtail_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/core_pipeline_test.cpp" "tests/CMakeFiles/longtail_tests.dir/core_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/core_pipeline_test.cpp.o.d"
  "/root/repo/tests/deploy_test.cpp" "tests/CMakeFiles/longtail_tests.dir/deploy_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/deploy_test.cpp.o.d"
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/longtail_tests.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/features_test.cpp.o.d"
  "/root/repo/tests/groundtruth_avsim_test.cpp" "tests/CMakeFiles/longtail_tests.dir/groundtruth_avsim_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/groundtruth_avsim_test.cpp.o.d"
  "/root/repo/tests/groundtruth_labeler_test.cpp" "tests/CMakeFiles/longtail_tests.dir/groundtruth_labeler_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/groundtruth_labeler_test.cpp.o.d"
  "/root/repo/tests/groundtruth_urllabel_test.cpp" "tests/CMakeFiles/longtail_tests.dir/groundtruth_urllabel_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/groundtruth_urllabel_test.cpp.o.d"
  "/root/repo/tests/groundtruth_vt_test.cpp" "tests/CMakeFiles/longtail_tests.dir/groundtruth_vt_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/groundtruth_vt_test.cpp.o.d"
  "/root/repo/tests/model_ids_test.cpp" "tests/CMakeFiles/longtail_tests.dir/model_ids_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/model_ids_test.cpp.o.d"
  "/root/repo/tests/model_labels_test.cpp" "tests/CMakeFiles/longtail_tests.dir/model_labels_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/model_labels_test.cpp.o.d"
  "/root/repo/tests/model_time_test.cpp" "tests/CMakeFiles/longtail_tests.dir/model_time_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/model_time_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/longtail_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/rules_classifier_test.cpp" "tests/CMakeFiles/longtail_tests.dir/rules_classifier_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/rules_classifier_test.cpp.o.d"
  "/root/repo/tests/rules_evaluation_test.cpp" "tests/CMakeFiles/longtail_tests.dir/rules_evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/rules_evaluation_test.cpp.o.d"
  "/root/repo/tests/rules_index_property_test.cpp" "tests/CMakeFiles/longtail_tests.dir/rules_index_property_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/rules_index_property_test.cpp.o.d"
  "/root/repo/tests/rules_part_test.cpp" "tests/CMakeFiles/longtail_tests.dir/rules_part_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/rules_part_test.cpp.o.d"
  "/root/repo/tests/rules_tree_test.cpp" "tests/CMakeFiles/longtail_tests.dir/rules_tree_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/rules_tree_test.cpp.o.d"
  "/root/repo/tests/synth_generator_test.cpp" "tests/CMakeFiles/longtail_tests.dir/synth_generator_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/synth_generator_test.cpp.o.d"
  "/root/repo/tests/synth_world_test.cpp" "tests/CMakeFiles/longtail_tests.dir/synth_world_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/synth_world_test.cpp.o.d"
  "/root/repo/tests/telemetry_collection_test.cpp" "tests/CMakeFiles/longtail_tests.dir/telemetry_collection_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/telemetry_collection_test.cpp.o.d"
  "/root/repo/tests/telemetry_index_test.cpp" "tests/CMakeFiles/longtail_tests.dir/telemetry_index_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/telemetry_index_test.cpp.o.d"
  "/root/repo/tests/telemetry_io_test.cpp" "tests/CMakeFiles/longtail_tests.dir/telemetry_io_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/telemetry_io_test.cpp.o.d"
  "/root/repo/tests/util_csv_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_csv_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_csv_test.cpp.o.d"
  "/root/repo/tests/util_domain_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_domain_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_domain_test.cpp.o.d"
  "/root/repo/tests/util_hash_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_hash_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_hash_test.cpp.o.d"
  "/root/repo/tests/util_interner_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_interner_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_interner_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_table_test.cpp.o.d"
  "/root/repo/tests/util_zipf_test.cpp" "tests/CMakeFiles/longtail_tests.dir/util_zipf_test.cpp.o" "gcc" "tests/CMakeFiles/longtail_tests.dir/util_zipf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/longtail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/longtail_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/longtail_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/longtail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/longtail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/longtail_features.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/longtail_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/longtail_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/groundtruth/CMakeFiles/longtail_groundtruth.dir/DependInfo.cmake"
  "/root/repo/build/src/avtype/CMakeFiles/longtail_avtype.dir/DependInfo.cmake"
  "/root/repo/build/src/avclass/CMakeFiles/longtail_avclass.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
