# Empty dependencies file for longtail_tests.
# This may be replaced when dependencies are built.
