file(REMOVE_RECURSE
  "../bench/table_baselines"
  "../bench/table_baselines.pdb"
  "CMakeFiles/table_baselines.dir/table_baselines.cpp.o"
  "CMakeFiles/table_baselines.dir/table_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
