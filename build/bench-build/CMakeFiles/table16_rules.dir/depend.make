# Empty dependencies file for table16_rules.
# This may be replaced when dependencies are built.
