file(REMOVE_RECURSE
  "../bench/table16_rules"
  "../bench/table16_rules.pdb"
  "CMakeFiles/table16_rules.dir/table16_rules.cpp.o"
  "CMakeFiles/table16_rules.dir/table16_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table16_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
