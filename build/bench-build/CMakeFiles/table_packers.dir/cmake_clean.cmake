file(REMOVE_RECURSE
  "../bench/table_packers"
  "../bench/table_packers.pdb"
  "CMakeFiles/table_packers.dir/table_packers.cpp.o"
  "CMakeFiles/table_packers.dir/table_packers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_packers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
