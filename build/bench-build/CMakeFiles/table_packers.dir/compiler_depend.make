# Empty compiler generated dependencies file for table_packers.
# This may be replaced when dependencies are built.
