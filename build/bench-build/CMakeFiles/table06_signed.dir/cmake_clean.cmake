file(REMOVE_RECURSE
  "../bench/table06_signed"
  "../bench/table06_signed.pdb"
  "CMakeFiles/table06_signed.dir/table06_signed.cpp.o"
  "CMakeFiles/table06_signed.dir/table06_signed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_signed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
