# Empty dependencies file for table06_signed.
# This may be replaced when dependencies are built.
