file(REMOVE_RECURSE
  "../bench/perf_rules"
  "../bench/perf_rules.pdb"
  "CMakeFiles/perf_rules.dir/perf_rules.cpp.o"
  "CMakeFiles/perf_rules.dir/perf_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
