# Empty dependencies file for perf_rules.
# This may be replaced when dependencies are built.
