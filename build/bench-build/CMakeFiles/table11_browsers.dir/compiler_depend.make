# Empty compiler generated dependencies file for table11_browsers.
# This may be replaced when dependencies are built.
