file(REMOVE_RECURSE
  "../bench/table11_browsers"
  "../bench/table11_browsers.pdb"
  "CMakeFiles/table11_browsers.dir/table11_browsers.cpp.o"
  "CMakeFiles/table11_browsers.dir/table11_browsers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
