# Empty compiler generated dependencies file for table_likely_labels.
# This may be replaced when dependencies are built.
