file(REMOVE_RECURSE
  "../bench/table_likely_labels"
  "../bench/table_likely_labels.pdb"
  "CMakeFiles/table_likely_labels.dir/table_likely_labels.cpp.o"
  "CMakeFiles/table_likely_labels.dir/table_likely_labels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_likely_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
