
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_families.cpp" "bench-build/CMakeFiles/fig1_families.dir/fig1_families.cpp.o" "gcc" "bench-build/CMakeFiles/fig1_families.dir/fig1_families.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/longtail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/longtail_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/longtail_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/longtail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/longtail_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/longtail_features.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/longtail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/longtail_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/avtype/CMakeFiles/longtail_avtype.dir/DependInfo.cmake"
  "/root/repo/build/src/avclass/CMakeFiles/longtail_avclass.dir/DependInfo.cmake"
  "/root/repo/build/src/groundtruth/CMakeFiles/longtail_groundtruth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
