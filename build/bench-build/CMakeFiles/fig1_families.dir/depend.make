# Empty dependencies file for fig1_families.
# This may be replaced when dependencies are built.
