file(REMOVE_RECURSE
  "../bench/fig1_families"
  "../bench/fig1_families.pdb"
  "CMakeFiles/fig1_families.dir/fig1_families.cpp.o"
  "CMakeFiles/fig1_families.dir/fig1_families.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
