file(REMOVE_RECURSE
  "../bench/table_training_window"
  "../bench/table_training_window.pdb"
  "CMakeFiles/table_training_window.dir/table_training_window.cpp.o"
  "CMakeFiles/table_training_window.dir/table_training_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_training_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
