# Empty compiler generated dependencies file for table_training_window.
# This may be replaced when dependencies are built.
