file(REMOVE_RECURSE
  "../bench/table03_domain_popularity"
  "../bench/table03_domain_popularity.pdb"
  "CMakeFiles/table03_domain_popularity.dir/table03_domain_popularity.cpp.o"
  "CMakeFiles/table03_domain_popularity.dir/table03_domain_popularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_domain_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
