# Empty dependencies file for table03_domain_popularity.
# This may be replaced when dependencies are built.
