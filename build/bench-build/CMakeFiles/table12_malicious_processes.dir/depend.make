# Empty dependencies file for table12_malicious_processes.
# This may be replaced when dependencies are built.
