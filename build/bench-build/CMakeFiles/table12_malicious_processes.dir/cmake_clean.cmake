file(REMOVE_RECURSE
  "../bench/table12_malicious_processes"
  "../bench/table12_malicious_processes.pdb"
  "CMakeFiles/table12_malicious_processes.dir/table12_malicious_processes.cpp.o"
  "CMakeFiles/table12_malicious_processes.dir/table12_malicious_processes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_malicious_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
