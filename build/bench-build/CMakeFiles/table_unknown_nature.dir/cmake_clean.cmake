file(REMOVE_RECURSE
  "../bench/table_unknown_nature"
  "../bench/table_unknown_nature.pdb"
  "CMakeFiles/table_unknown_nature.dir/table_unknown_nature.cpp.o"
  "CMakeFiles/table_unknown_nature.dir/table_unknown_nature.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_unknown_nature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
