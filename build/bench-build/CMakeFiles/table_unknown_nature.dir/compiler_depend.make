# Empty compiler generated dependencies file for table_unknown_nature.
# This may be replaced when dependencies are built.
