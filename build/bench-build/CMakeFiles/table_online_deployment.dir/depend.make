# Empty dependencies file for table_online_deployment.
# This may be replaced when dependencies are built.
