file(REMOVE_RECURSE
  "../bench/table_online_deployment"
  "../bench/table_online_deployment.pdb"
  "CMakeFiles/table_online_deployment.dir/table_online_deployment.cpp.o"
  "CMakeFiles/table_online_deployment.dir/table_online_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_online_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
