# Empty compiler generated dependencies file for fig2_prevalence.
# This may be replaced when dependencies are built.
