file(REMOVE_RECURSE
  "../bench/fig2_prevalence"
  "../bench/fig2_prevalence.pdb"
  "CMakeFiles/fig2_prevalence.dir/fig2_prevalence.cpp.o"
  "CMakeFiles/fig2_prevalence.dir/fig2_prevalence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
