file(REMOVE_RECURSE
  "../bench/table04_files_per_domain"
  "../bench/table04_files_per_domain.pdb"
  "CMakeFiles/table04_files_per_domain.dir/table04_files_per_domain.cpp.o"
  "CMakeFiles/table04_files_per_domain.dir/table04_files_per_domain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_files_per_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
