# Empty dependencies file for table04_files_per_domain.
# This may be replaced when dependencies are built.
