# Empty dependencies file for table_expansion.
# This may be replaced when dependencies are built.
