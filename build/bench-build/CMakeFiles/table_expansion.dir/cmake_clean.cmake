file(REMOVE_RECURSE
  "../bench/table_expansion"
  "../bench/table_expansion.pdb"
  "CMakeFiles/table_expansion.dir/table_expansion.cpp.o"
  "CMakeFiles/table_expansion.dir/table_expansion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
