file(REMOVE_RECURSE
  "../bench/table10_benign_processes"
  "../bench/table10_benign_processes.pdb"
  "CMakeFiles/table10_benign_processes.dir/table10_benign_processes.cpp.o"
  "CMakeFiles/table10_benign_processes.dir/table10_benign_processes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_benign_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
