# Empty compiler generated dependencies file for table10_benign_processes.
# This may be replaced when dependencies are built.
