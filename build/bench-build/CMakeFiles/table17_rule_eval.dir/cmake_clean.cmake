file(REMOVE_RECURSE
  "../bench/table17_rule_eval"
  "../bench/table17_rule_eval.pdb"
  "CMakeFiles/table17_rule_eval.dir/table17_rule_eval.cpp.o"
  "CMakeFiles/table17_rule_eval.dir/table17_rule_eval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table17_rule_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
