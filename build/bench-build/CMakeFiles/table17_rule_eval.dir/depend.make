# Empty dependencies file for table17_rule_eval.
# This may be replaced when dependencies are built.
