# Empty compiler generated dependencies file for fig5_transitions.
# This may be replaced when dependencies are built.
