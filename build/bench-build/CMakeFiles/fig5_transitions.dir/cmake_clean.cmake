file(REMOVE_RECURSE
  "../bench/fig5_transitions"
  "../bench/fig5_transitions.pdb"
  "CMakeFiles/fig5_transitions.dir/fig5_transitions.cpp.o"
  "CMakeFiles/fig5_transitions.dir/fig5_transitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
