# Empty dependencies file for fig6_unknown_alexa.
# This may be replaced when dependencies are built.
