file(REMOVE_RECURSE
  "../bench/fig6_unknown_alexa"
  "../bench/fig6_unknown_alexa.pdb"
  "CMakeFiles/fig6_unknown_alexa.dir/fig6_unknown_alexa.cpp.o"
  "CMakeFiles/fig6_unknown_alexa.dir/fig6_unknown_alexa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_unknown_alexa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
