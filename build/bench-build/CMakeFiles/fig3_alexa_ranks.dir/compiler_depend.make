# Empty compiler generated dependencies file for fig3_alexa_ranks.
# This may be replaced when dependencies are built.
