file(REMOVE_RECURSE
  "../bench/fig3_alexa_ranks"
  "../bench/fig3_alexa_ranks.pdb"
  "CMakeFiles/fig3_alexa_ranks.dir/fig3_alexa_ranks.cpp.o"
  "CMakeFiles/fig3_alexa_ranks.dir/fig3_alexa_ranks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_alexa_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
