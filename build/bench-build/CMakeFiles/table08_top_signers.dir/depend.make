# Empty dependencies file for table08_top_signers.
# This may be replaced when dependencies are built.
