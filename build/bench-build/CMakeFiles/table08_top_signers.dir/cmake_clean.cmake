file(REMOVE_RECURSE
  "../bench/table08_top_signers"
  "../bench/table08_top_signers.pdb"
  "CMakeFiles/table08_top_signers.dir/table08_top_signers.cpp.o"
  "CMakeFiles/table08_top_signers.dir/table08_top_signers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_top_signers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
