file(REMOVE_RECURSE
  "../bench/table07_signer_overlap"
  "../bench/table07_signer_overlap.pdb"
  "CMakeFiles/table07_signer_overlap.dir/table07_signer_overlap.cpp.o"
  "CMakeFiles/table07_signer_overlap.dir/table07_signer_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_signer_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
