# Empty compiler generated dependencies file for table07_signer_overlap.
# This may be replaced when dependencies are built.
