# Empty compiler generated dependencies file for table13_unknown_domains.
# This may be replaced when dependencies are built.
