file(REMOVE_RECURSE
  "../bench/table13_unknown_domains"
  "../bench/table13_unknown_domains.pdb"
  "CMakeFiles/table13_unknown_domains.dir/table13_unknown_domains.cpp.o"
  "CMakeFiles/table13_unknown_domains.dir/table13_unknown_domains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_unknown_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
