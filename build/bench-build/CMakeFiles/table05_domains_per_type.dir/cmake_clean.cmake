file(REMOVE_RECURSE
  "../bench/table05_domains_per_type"
  "../bench/table05_domains_per_type.pdb"
  "CMakeFiles/table05_domains_per_type.dir/table05_domains_per_type.cpp.o"
  "CMakeFiles/table05_domains_per_type.dir/table05_domains_per_type.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_domains_per_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
