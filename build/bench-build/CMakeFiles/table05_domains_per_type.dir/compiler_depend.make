# Empty compiler generated dependencies file for table05_domains_per_type.
# This may be replaced when dependencies are built.
