# Empty compiler generated dependencies file for table09_exclusive_signers.
# This may be replaced when dependencies are built.
