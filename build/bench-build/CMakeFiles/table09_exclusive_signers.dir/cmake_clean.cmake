file(REMOVE_RECURSE
  "../bench/table09_exclusive_signers"
  "../bench/table09_exclusive_signers.pdb"
  "CMakeFiles/table09_exclusive_signers.dir/table09_exclusive_signers.cpp.o"
  "CMakeFiles/table09_exclusive_signers.dir/table09_exclusive_signers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_exclusive_signers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
