file(REMOVE_RECURSE
  "../bench/fig_maturation"
  "../bench/fig_maturation.pdb"
  "CMakeFiles/fig_maturation.dir/fig_maturation.cpp.o"
  "CMakeFiles/fig_maturation.dir/fig_maturation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_maturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
