# Empty compiler generated dependencies file for fig_maturation.
# This may be replaced when dependencies are built.
