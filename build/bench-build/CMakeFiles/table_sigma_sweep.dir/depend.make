# Empty dependencies file for table_sigma_sweep.
# This may be replaced when dependencies are built.
