file(REMOVE_RECURSE
  "../bench/table_sigma_sweep"
  "../bench/table_sigma_sweep.pdb"
  "CMakeFiles/table_sigma_sweep.dir/table_sigma_sweep.cpp.o"
  "CMakeFiles/table_sigma_sweep.dir/table_sigma_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sigma_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
