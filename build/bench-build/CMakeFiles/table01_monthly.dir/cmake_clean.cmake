file(REMOVE_RECURSE
  "../bench/table01_monthly"
  "../bench/table01_monthly.pdb"
  "CMakeFiles/table01_monthly.dir/table01_monthly.cpp.o"
  "CMakeFiles/table01_monthly.dir/table01_monthly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_monthly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
