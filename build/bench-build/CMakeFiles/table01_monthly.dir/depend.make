# Empty dependencies file for table01_monthly.
# This may be replaced when dependencies are built.
