file(REMOVE_RECURSE
  "../bench/table14_unknown_processes"
  "../bench/table14_unknown_processes.pdb"
  "CMakeFiles/table14_unknown_processes.dir/table14_unknown_processes.cpp.o"
  "CMakeFiles/table14_unknown_processes.dir/table14_unknown_processes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_unknown_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
