# Empty dependencies file for table14_unknown_processes.
# This may be replaced when dependencies are built.
