# Empty dependencies file for table_rule_aging.
# This may be replaced when dependencies are built.
