file(REMOVE_RECURSE
  "../bench/table_rule_aging"
  "../bench/table_rule_aging.pdb"
  "CMakeFiles/table_rule_aging.dir/table_rule_aging.cpp.o"
  "CMakeFiles/table_rule_aging.dir/table_rule_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_rule_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
