file(REMOVE_RECURSE
  "../bench/fig4_common_signers"
  "../bench/fig4_common_signers.pdb"
  "CMakeFiles/fig4_common_signers.dir/fig4_common_signers.cpp.o"
  "CMakeFiles/fig4_common_signers.dir/fig4_common_signers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_common_signers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
