# Empty compiler generated dependencies file for fig4_common_signers.
# This may be replaced when dependencies are built.
