# Empty compiler generated dependencies file for table02_types.
# This may be replaced when dependencies are built.
