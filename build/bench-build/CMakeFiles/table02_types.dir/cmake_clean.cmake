file(REMOVE_RECURSE
  "../bench/table02_types"
  "../bench/table02_types.pdb"
  "CMakeFiles/table02_types.dir/table02_types.cpp.o"
  "CMakeFiles/table02_types.dir/table02_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
