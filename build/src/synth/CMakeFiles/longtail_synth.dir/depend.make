# Empty dependencies file for longtail_synth.
# This may be replaced when dependencies are built.
