
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/calibration.cpp" "src/synth/CMakeFiles/longtail_synth.dir/calibration.cpp.o" "gcc" "src/synth/CMakeFiles/longtail_synth.dir/calibration.cpp.o.d"
  "/root/repo/src/synth/generator.cpp" "src/synth/CMakeFiles/longtail_synth.dir/generator.cpp.o" "gcc" "src/synth/CMakeFiles/longtail_synth.dir/generator.cpp.o.d"
  "/root/repo/src/synth/names.cpp" "src/synth/CMakeFiles/longtail_synth.dir/names.cpp.o" "gcc" "src/synth/CMakeFiles/longtail_synth.dir/names.cpp.o.d"
  "/root/repo/src/synth/world.cpp" "src/synth/CMakeFiles/longtail_synth.dir/world.cpp.o" "gcc" "src/synth/CMakeFiles/longtail_synth.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/longtail_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/groundtruth/CMakeFiles/longtail_groundtruth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
