file(REMOVE_RECURSE
  "CMakeFiles/longtail_synth.dir/calibration.cpp.o"
  "CMakeFiles/longtail_synth.dir/calibration.cpp.o.d"
  "CMakeFiles/longtail_synth.dir/generator.cpp.o"
  "CMakeFiles/longtail_synth.dir/generator.cpp.o.d"
  "CMakeFiles/longtail_synth.dir/names.cpp.o"
  "CMakeFiles/longtail_synth.dir/names.cpp.o.d"
  "CMakeFiles/longtail_synth.dir/world.cpp.o"
  "CMakeFiles/longtail_synth.dir/world.cpp.o.d"
  "liblongtail_synth.a"
  "liblongtail_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
