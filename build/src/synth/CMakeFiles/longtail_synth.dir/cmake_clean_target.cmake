file(REMOVE_RECURSE
  "liblongtail_synth.a"
)
