# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("model")
subdirs("telemetry")
subdirs("synth")
subdirs("groundtruth")
subdirs("avclass")
subdirs("avtype")
subdirs("features")
subdirs("rules")
subdirs("baselines")
subdirs("deploy")
subdirs("analysis")
subdirs("core")
