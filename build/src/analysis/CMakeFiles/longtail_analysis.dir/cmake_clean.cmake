file(REMOVE_RECURSE
  "CMakeFiles/longtail_analysis.dir/annotated.cpp.o"
  "CMakeFiles/longtail_analysis.dir/annotated.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/coverage.cpp.o"
  "CMakeFiles/longtail_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/domains.cpp.o"
  "CMakeFiles/longtail_analysis.dir/domains.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/malproc.cpp.o"
  "CMakeFiles/longtail_analysis.dir/malproc.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/monthly.cpp.o"
  "CMakeFiles/longtail_analysis.dir/monthly.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/packers.cpp.o"
  "CMakeFiles/longtail_analysis.dir/packers.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/prevalence.cpp.o"
  "CMakeFiles/longtail_analysis.dir/prevalence.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/processes.cpp.o"
  "CMakeFiles/longtail_analysis.dir/processes.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/procname.cpp.o"
  "CMakeFiles/longtail_analysis.dir/procname.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/signers.cpp.o"
  "CMakeFiles/longtail_analysis.dir/signers.cpp.o.d"
  "CMakeFiles/longtail_analysis.dir/transitions.cpp.o"
  "CMakeFiles/longtail_analysis.dir/transitions.cpp.o.d"
  "liblongtail_analysis.a"
  "liblongtail_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
