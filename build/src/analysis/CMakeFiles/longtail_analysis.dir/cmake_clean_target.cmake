file(REMOVE_RECURSE
  "liblongtail_analysis.a"
)
