# Empty dependencies file for longtail_analysis.
# This may be replaced when dependencies are built.
