
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/annotated.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/annotated.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/annotated.cpp.o.d"
  "/root/repo/src/analysis/coverage.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/coverage.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/coverage.cpp.o.d"
  "/root/repo/src/analysis/domains.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/domains.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/domains.cpp.o.d"
  "/root/repo/src/analysis/malproc.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/malproc.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/malproc.cpp.o.d"
  "/root/repo/src/analysis/monthly.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/monthly.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/monthly.cpp.o.d"
  "/root/repo/src/analysis/packers.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/packers.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/packers.cpp.o.d"
  "/root/repo/src/analysis/prevalence.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/prevalence.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/prevalence.cpp.o.d"
  "/root/repo/src/analysis/processes.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/processes.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/processes.cpp.o.d"
  "/root/repo/src/analysis/procname.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/procname.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/procname.cpp.o.d"
  "/root/repo/src/analysis/signers.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/signers.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/signers.cpp.o.d"
  "/root/repo/src/analysis/transitions.cpp" "src/analysis/CMakeFiles/longtail_analysis.dir/transitions.cpp.o" "gcc" "src/analysis/CMakeFiles/longtail_analysis.dir/transitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/longtail_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/groundtruth/CMakeFiles/longtail_groundtruth.dir/DependInfo.cmake"
  "/root/repo/build/src/avtype/CMakeFiles/longtail_avtype.dir/DependInfo.cmake"
  "/root/repo/build/src/avclass/CMakeFiles/longtail_avclass.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
