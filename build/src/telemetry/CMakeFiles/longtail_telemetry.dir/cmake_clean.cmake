file(REMOVE_RECURSE
  "CMakeFiles/longtail_telemetry.dir/collection.cpp.o"
  "CMakeFiles/longtail_telemetry.dir/collection.cpp.o.d"
  "CMakeFiles/longtail_telemetry.dir/index.cpp.o"
  "CMakeFiles/longtail_telemetry.dir/index.cpp.o.d"
  "CMakeFiles/longtail_telemetry.dir/io.cpp.o"
  "CMakeFiles/longtail_telemetry.dir/io.cpp.o.d"
  "liblongtail_telemetry.a"
  "liblongtail_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
