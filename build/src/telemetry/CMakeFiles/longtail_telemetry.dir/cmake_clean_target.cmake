file(REMOVE_RECURSE
  "liblongtail_telemetry.a"
)
