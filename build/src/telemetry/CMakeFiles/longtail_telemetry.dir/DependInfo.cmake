
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/collection.cpp" "src/telemetry/CMakeFiles/longtail_telemetry.dir/collection.cpp.o" "gcc" "src/telemetry/CMakeFiles/longtail_telemetry.dir/collection.cpp.o.d"
  "/root/repo/src/telemetry/index.cpp" "src/telemetry/CMakeFiles/longtail_telemetry.dir/index.cpp.o" "gcc" "src/telemetry/CMakeFiles/longtail_telemetry.dir/index.cpp.o.d"
  "/root/repo/src/telemetry/io.cpp" "src/telemetry/CMakeFiles/longtail_telemetry.dir/io.cpp.o" "gcc" "src/telemetry/CMakeFiles/longtail_telemetry.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
