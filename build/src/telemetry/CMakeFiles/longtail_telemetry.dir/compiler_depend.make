# Empty compiler generated dependencies file for longtail_telemetry.
# This may be replaced when dependencies are built.
