# Empty compiler generated dependencies file for longtail_core.
# This may be replaced when dependencies are built.
