file(REMOVE_RECURSE
  "CMakeFiles/longtail_core.dir/pipeline.cpp.o"
  "CMakeFiles/longtail_core.dir/pipeline.cpp.o.d"
  "liblongtail_core.a"
  "liblongtail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
