file(REMOVE_RECURSE
  "liblongtail_core.a"
)
