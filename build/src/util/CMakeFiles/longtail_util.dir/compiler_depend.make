# Empty compiler generated dependencies file for longtail_util.
# This may be replaced when dependencies are built.
