file(REMOVE_RECURSE
  "liblongtail_util.a"
)
