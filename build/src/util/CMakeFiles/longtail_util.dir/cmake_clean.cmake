file(REMOVE_RECURSE
  "CMakeFiles/longtail_util.dir/csv.cpp.o"
  "CMakeFiles/longtail_util.dir/csv.cpp.o.d"
  "CMakeFiles/longtail_util.dir/domain.cpp.o"
  "CMakeFiles/longtail_util.dir/domain.cpp.o.d"
  "CMakeFiles/longtail_util.dir/hash.cpp.o"
  "CMakeFiles/longtail_util.dir/hash.cpp.o.d"
  "CMakeFiles/longtail_util.dir/rng.cpp.o"
  "CMakeFiles/longtail_util.dir/rng.cpp.o.d"
  "CMakeFiles/longtail_util.dir/table.cpp.o"
  "CMakeFiles/longtail_util.dir/table.cpp.o.d"
  "CMakeFiles/longtail_util.dir/zipf.cpp.o"
  "CMakeFiles/longtail_util.dir/zipf.cpp.o.d"
  "liblongtail_util.a"
  "liblongtail_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
