file(REMOVE_RECURSE
  "CMakeFiles/longtail_avclass.dir/avclass.cpp.o"
  "CMakeFiles/longtail_avclass.dir/avclass.cpp.o.d"
  "liblongtail_avclass.a"
  "liblongtail_avclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_avclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
