file(REMOVE_RECURSE
  "liblongtail_avclass.a"
)
