# Empty compiler generated dependencies file for longtail_avclass.
# This may be replaced when dependencies are built.
