file(REMOVE_RECURSE
  "liblongtail_features.a"
)
