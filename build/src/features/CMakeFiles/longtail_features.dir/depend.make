# Empty dependencies file for longtail_features.
# This may be replaced when dependencies are built.
