file(REMOVE_RECURSE
  "CMakeFiles/longtail_features.dir/dataset.cpp.o"
  "CMakeFiles/longtail_features.dir/dataset.cpp.o.d"
  "CMakeFiles/longtail_features.dir/features.cpp.o"
  "CMakeFiles/longtail_features.dir/features.cpp.o.d"
  "liblongtail_features.a"
  "liblongtail_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
