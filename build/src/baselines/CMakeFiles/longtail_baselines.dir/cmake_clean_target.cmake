file(REMOVE_RECURSE
  "liblongtail_baselines.a"
)
