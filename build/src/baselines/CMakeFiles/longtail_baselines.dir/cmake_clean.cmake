file(REMOVE_RECURSE
  "CMakeFiles/longtail_baselines.dir/reputation.cpp.o"
  "CMakeFiles/longtail_baselines.dir/reputation.cpp.o.d"
  "liblongtail_baselines.a"
  "liblongtail_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
