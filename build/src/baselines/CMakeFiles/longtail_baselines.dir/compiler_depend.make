# Empty compiler generated dependencies file for longtail_baselines.
# This may be replaced when dependencies are built.
