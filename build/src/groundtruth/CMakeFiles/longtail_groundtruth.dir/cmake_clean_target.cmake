file(REMOVE_RECURSE
  "liblongtail_groundtruth.a"
)
