file(REMOVE_RECURSE
  "CMakeFiles/longtail_groundtruth.dir/avsim.cpp.o"
  "CMakeFiles/longtail_groundtruth.dir/avsim.cpp.o.d"
  "CMakeFiles/longtail_groundtruth.dir/labeler.cpp.o"
  "CMakeFiles/longtail_groundtruth.dir/labeler.cpp.o.d"
  "liblongtail_groundtruth.a"
  "liblongtail_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
