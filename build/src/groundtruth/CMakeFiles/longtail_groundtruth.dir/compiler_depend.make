# Empty compiler generated dependencies file for longtail_groundtruth.
# This may be replaced when dependencies are built.
