# Empty compiler generated dependencies file for longtail_rules.
# This may be replaced when dependencies are built.
