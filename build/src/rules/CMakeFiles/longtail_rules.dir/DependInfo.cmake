
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/classifier.cpp" "src/rules/CMakeFiles/longtail_rules.dir/classifier.cpp.o" "gcc" "src/rules/CMakeFiles/longtail_rules.dir/classifier.cpp.o.d"
  "/root/repo/src/rules/evaluation.cpp" "src/rules/CMakeFiles/longtail_rules.dir/evaluation.cpp.o" "gcc" "src/rules/CMakeFiles/longtail_rules.dir/evaluation.cpp.o.d"
  "/root/repo/src/rules/induction.cpp" "src/rules/CMakeFiles/longtail_rules.dir/induction.cpp.o" "gcc" "src/rules/CMakeFiles/longtail_rules.dir/induction.cpp.o.d"
  "/root/repo/src/rules/part.cpp" "src/rules/CMakeFiles/longtail_rules.dir/part.cpp.o" "gcc" "src/rules/CMakeFiles/longtail_rules.dir/part.cpp.o.d"
  "/root/repo/src/rules/rule.cpp" "src/rules/CMakeFiles/longtail_rules.dir/rule.cpp.o" "gcc" "src/rules/CMakeFiles/longtail_rules.dir/rule.cpp.o.d"
  "/root/repo/src/rules/tree.cpp" "src/rules/CMakeFiles/longtail_rules.dir/tree.cpp.o" "gcc" "src/rules/CMakeFiles/longtail_rules.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/longtail_features.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/longtail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/longtail_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/avtype/CMakeFiles/longtail_avtype.dir/DependInfo.cmake"
  "/root/repo/build/src/avclass/CMakeFiles/longtail_avclass.dir/DependInfo.cmake"
  "/root/repo/build/src/groundtruth/CMakeFiles/longtail_groundtruth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
