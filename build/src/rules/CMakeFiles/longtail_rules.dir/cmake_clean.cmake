file(REMOVE_RECURSE
  "CMakeFiles/longtail_rules.dir/classifier.cpp.o"
  "CMakeFiles/longtail_rules.dir/classifier.cpp.o.d"
  "CMakeFiles/longtail_rules.dir/evaluation.cpp.o"
  "CMakeFiles/longtail_rules.dir/evaluation.cpp.o.d"
  "CMakeFiles/longtail_rules.dir/induction.cpp.o"
  "CMakeFiles/longtail_rules.dir/induction.cpp.o.d"
  "CMakeFiles/longtail_rules.dir/part.cpp.o"
  "CMakeFiles/longtail_rules.dir/part.cpp.o.d"
  "CMakeFiles/longtail_rules.dir/rule.cpp.o"
  "CMakeFiles/longtail_rules.dir/rule.cpp.o.d"
  "CMakeFiles/longtail_rules.dir/tree.cpp.o"
  "CMakeFiles/longtail_rules.dir/tree.cpp.o.d"
  "liblongtail_rules.a"
  "liblongtail_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
