file(REMOVE_RECURSE
  "liblongtail_rules.a"
)
