file(REMOVE_RECURSE
  "liblongtail_avtype.a"
)
