file(REMOVE_RECURSE
  "CMakeFiles/longtail_avtype.dir/avtype.cpp.o"
  "CMakeFiles/longtail_avtype.dir/avtype.cpp.o.d"
  "liblongtail_avtype.a"
  "liblongtail_avtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_avtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
