# Empty compiler generated dependencies file for longtail_avtype.
# This may be replaced when dependencies are built.
