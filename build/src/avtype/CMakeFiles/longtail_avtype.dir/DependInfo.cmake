
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avtype/avtype.cpp" "src/avtype/CMakeFiles/longtail_avtype.dir/avtype.cpp.o" "gcc" "src/avtype/CMakeFiles/longtail_avtype.dir/avtype.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/groundtruth/CMakeFiles/longtail_groundtruth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/longtail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
