# Empty compiler generated dependencies file for longtail_deploy.
# This may be replaced when dependencies are built.
