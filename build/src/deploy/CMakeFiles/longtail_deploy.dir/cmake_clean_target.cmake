file(REMOVE_RECURSE
  "liblongtail_deploy.a"
)
