file(REMOVE_RECURSE
  "CMakeFiles/longtail_deploy.dir/online.cpp.o"
  "CMakeFiles/longtail_deploy.dir/online.cpp.o.d"
  "liblongtail_deploy.a"
  "liblongtail_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
