file(REMOVE_RECURSE
  "CMakeFiles/longtail_cli.dir/longtail_cli.cpp.o"
  "CMakeFiles/longtail_cli.dir/longtail_cli.cpp.o.d"
  "longtail_cli"
  "longtail_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
