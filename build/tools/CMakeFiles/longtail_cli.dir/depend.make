# Empty dependencies file for longtail_cli.
# This may be replaced when dependencies are built.
