# Empty dependencies file for avtype_tool.
# This may be replaced when dependencies are built.
