file(REMOVE_RECURSE
  "CMakeFiles/avtype_tool.dir/avtype_tool.cpp.o"
  "CMakeFiles/avtype_tool.dir/avtype_tool.cpp.o.d"
  "avtype_tool"
  "avtype_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avtype_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
