# Empty compiler generated dependencies file for avtype_tool.
# This may be replaced when dependencies are built.
