# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_summary "/root/repo/build/tools/longtail_cli" "summary" "--scale" "0.01")
set_tests_properties(cli_summary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rules "/root/repo/build/tools/longtail_cli" "rules" "--scale" "0.01" "--train" "Feb" "--test" "Mar")
set_tests_properties(cli_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_transitions "/root/repo/build/tools/longtail_cli" "transitions" "--scale" "0.01")
set_tests_properties(cli_transitions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(report_smoke "/root/repo/build/tools/make_report" "--scale" "0.01" "--out" "/root/repo/build/report_smoke.md")
set_tests_properties(report_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/longtail_cli" "bogus")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
