file(REMOVE_RECURSE
  "CMakeFiles/label_expansion.dir/label_expansion.cpp.o"
  "CMakeFiles/label_expansion.dir/label_expansion.cpp.o.d"
  "label_expansion"
  "label_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
