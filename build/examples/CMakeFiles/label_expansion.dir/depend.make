# Empty dependencies file for label_expansion.
# This may be replaced when dependencies are built.
