# Empty dependencies file for campaign_forensics.
# This may be replaced when dependencies are built.
