file(REMOVE_RECURSE
  "CMakeFiles/campaign_forensics.dir/campaign_forensics.cpp.o"
  "CMakeFiles/campaign_forensics.dir/campaign_forensics.cpp.o.d"
  "campaign_forensics"
  "campaign_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
