# Empty compiler generated dependencies file for detector_eval.
# This may be replaced when dependencies are built.
