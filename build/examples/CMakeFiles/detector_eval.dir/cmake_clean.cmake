file(REMOVE_RECURSE
  "CMakeFiles/detector_eval.dir/detector_eval.cpp.o"
  "CMakeFiles/detector_eval.dir/detector_eval.cpp.o.d"
  "detector_eval"
  "detector_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
