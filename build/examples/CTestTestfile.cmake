# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "0.01")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_label_expansion "/root/repo/build/examples/label_expansion" "0.01")
set_tests_properties(example_label_expansion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign_forensics "/root/repo/build/examples/campaign_forensics" "0.01")
set_tests_properties(example_campaign_forensics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_detector_eval "/root/repo/build/examples/detector_eval" "0.01")
set_tests_properties(example_detector_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_dataset "/root/repo/build/examples/export_dataset" "0.01" "/root/repo/build/export_smoke")
set_tests_properties(example_export_dataset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
