// Reproduces Fig. 2: prevalence of downloaded software files (CDF per
// verdict class). The long tail is the paper's headline: ~90% of all files
// are downloaded and executed by a single machine, and the tail is driven
// by unknown files.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Fig. 2: prevalence of downloaded software files (CDF)",
      "Paper: ~90% of all files have prevalence 1; unknown files have the "
      "longest tail;\nonly ~0.25% of files reach the sigma=20 reporting "
      "cap.");

  const auto pipeline = bench::make_pipeline();
  const auto dist = analysis::prevalence_distributions(pipeline.annotated());

  util::TextTable table(
      {"Prevalence <=", "All", "Benign", "Malicious", "Unknown"});
  for (const double x : {1.0, 2.0, 3.0, 5.0, 10.0, 15.0, 20.0}) {
    table.add_row({util::fixed(x, 0), util::pct(100 * dist.all.at(x)),
                   util::pct(100 * dist.benign.at(x)),
                   util::pct(100 * dist.malicious.at(x)),
                   util::pct(100 * dist.unknown.at(x))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nFiles with prevalence exactly 1: %s (paper: ~90%%)\n"
      "Files at the sigma=20 cap:        %s (paper: <=0.25%%)\n",
      util::pct(100 * dist.prevalence_one_fraction).c_str(),
      util::pct(100 * dist.at_cap_fraction, 2).c_str());

  // §IV-A: per-type prevalence distributions are very similar.
  const auto by_type = analysis::prevalence_by_type(pipeline.annotated());
  std::printf("\nPrevalence CDF at 1/3/10 per malicious type (paper: "
              "\"very similar to each other\"):\n");
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    if (by_type[t].empty()) continue;
    std::printf("  %-11s %s / %s / %s\n",
                std::string(to_string(static_cast<model::MalwareType>(t)))
                    .c_str(),
                util::pct(100 * by_type[t].at(1)).c_str(),
                util::pct(100 * by_type[t].at(3)).c_str(),
                util::pct(100 * by_type[t].at(10)).c_str());
  }
  return 0;
}
