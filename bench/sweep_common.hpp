// Shared measurement helpers for the degradation sweeps.
//
// table_robustness (fault profiles) and table_scenarios (adversarial
// world scenarios) report the same headline reproduction metrics — the
// §IV-A unknown-file share and unknown machine coverage, and the §VI
// Mar→Apr rule TP/FP at tau — so both must measure them through one code
// path; a drift number is only comparable across the two sweeps if the
// metric is computed identically. This header is that single code path,
// plus the scenario sweep's σ-cap saturation scan and the streaming
// serving replay (the perf_pipeline streaming section's pass-through
// harness, reusable per sweep run).
#pragma once

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "analysis/streaming.hpp"
#include "bench_common.hpp"
#include "deploy/online.hpp"
#include "synth/feed.hpp"
#include "telemetry/streaming.hpp"

namespace longtail::bench {

// The headline reproduction metrics every sweep reports, measured on an
// annotated pipeline. Paper baselines: 83% unknown files, 69% unknown
// machine coverage; Tables XVI/XVII TP/FP at tau = 0.1%.
struct HeadlineMetrics {
  double unknown_file_pct = 0;
  double unknown_machine_pct = 0;
  double rule_tp_rate = 0;
  double rule_fp_rate = 0;
};

inline HeadlineMetrics measure_headline(const core::LongtailPipeline& pipeline,
                                        double tau = 0.001) {
  HeadlineMetrics h;
  const auto monthly = analysis::monthly_summary(pipeline.annotated());
  h.unknown_file_pct = 100.0 - monthly.overall.file_benign -
                       monthly.overall.file_likely_benign -
                       monthly.overall.file_malicious -
                       monthly.overall.file_likely_malicious;
  h.unknown_machine_pct = analysis::machine_coverage(pipeline.annotated())
                              .pct(model::Verdict::kUnknown);
  const auto experiment = pipeline.run_rule_experiment(model::Month::kMarch,
                                                       model::Month::kApril);
  const auto eval = core::LongtailPipeline::evaluate_tau(experiment, tau);
  h.rule_tp_rate = eval.eval.tp_rate();
  h.rule_fp_rate = eval.eval.fp_rate();
  return h;
}

inline std::string headline_json(const HeadlineMetrics& h,
                                 std::uint64_t events,
                                 std::uint64_t fingerprint) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return JsonObject()
      .field("unknown_file_pct", h.unknown_file_pct)
      .field("unknown_machine_pct", h.unknown_machine_pct)
      .field("rule_tp_rate", h.rule_tp_rate)
      .field("rule_fp_rate", h.rule_fp_rate)
      .field("events", events)
      .field("fingerprint", std::string_view(fp))
      .str();
}

// Drift of one run's headline vs the sweep baseline, percentage points.
inline std::string headline_drift_json(const HeadlineMetrics& r,
                                       const HeadlineMetrics& base) {
  return JsonObject()
      .field("unknown_file_pct", r.unknown_file_pct - base.unknown_file_pct)
      .field("unknown_machine_pct",
             r.unknown_machine_pct - base.unknown_machine_pct)
      .field("rule_tp_rate", r.rule_tp_rate - base.rule_tp_rate)
      .field("rule_fp_rate", r.rule_fp_rate - base.rule_fp_rate)
      .str();
}

// σ-cap saturation over the *accepted* corpus: how many distinct files
// the prevalence cap is actively limiting. A churn adversary's goal is to
// drive saturated_files toward zero while moving the same raw volume —
// the cap then never fires and every variant's full victim set reports.
struct SigmaCapStats {
  std::uint64_t files_seen = 0;       // distinct files with accepted events
  std::uint64_t saturated_files = 0;  // admitted-machine count == sigma
  std::uint64_t dropped_prevalence_cap = 0;  // from CollectionStats
  std::uint64_t accepted = 0;
  std::uint64_t total_seen = 0;
  [[nodiscard]] double admission_pct() const {
    return total_seen == 0 ? 0.0
                           : 100.0 * static_cast<double>(accepted) /
                                 static_cast<double>(total_seen);
  }
};

inline SigmaCapStats measure_sigma_cap(const synth::Dataset& ds) {
  SigmaCapStats s;
  s.dropped_prevalence_cap = ds.collection_stats.dropped_prevalence_cap;
  s.accepted = ds.collection_stats.accepted;
  s.total_seen = ds.collection_stats.total_seen();
  // Distinct admitted machines per file over the accepted corpus; the
  // collection server caps them at sigma, so == sigma means saturated.
  const std::uint32_t sigma = ds.profile.sigma;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> machines;
  const auto& events = ds.corpus.events;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto e = events[i];
    machines[e.file().raw()].push_back(e.machine().raw());
  }
  s.files_seen = machines.size();
  for (auto& [file, ms] : machines) {
    std::sort(ms.begin(), ms.end());
    ms.erase(std::unique(ms.begin(), ms.end()), ms.end());
    if (ms.size() >= sigma) ++s.saturated_files;
  }
  return s;
}

inline std::string sigma_json(const SigmaCapStats& s) {
  return JsonObject()
      .field("files_seen", s.files_seen)
      .field("saturated_files", s.saturated_files)
      .field("dropped_prevalence_cap", s.dropped_prevalence_cap)
      .field("accepted", s.accepted)
      .field("total_seen", s.total_seen)
      .field("admission_pct", s.admission_pct())
      .str();
}

// Streaming serving replay: re-ingests the collected corpus through the
// untrusted streaming path in chunks (pass-through policy — sigma was
// already applied at collection, so every event survives and the serving
// loop sees exactly the corpus), then serves every closed window through
// the online labeler. Freshness percentiles and the peak-window load are
// how burst scenarios stress the serving loop.
struct StreamingReplayStats {
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t peak_window_events = 0;
  double ingest_ms = 0;
  double ingest_events_per_sec = 0;
  double serve_ms = 0;
  bool conserved = false;
  deploy::FreshnessStats freshness;
};

inline StreamingReplayStats replay_streaming(
    const synth::Dataset& ds, const analysis::AnnotatedCorpus& annotated) {
  StreamingReplayStats out;
  const auto& events = ds.corpus.events;
  const std::size_t n = events.size();
  out.events = n;
  const std::size_t chunk = synth::ChunkedFeed::chunk_from_env();

  telemetry::StreamingConfig cfg;
  cfg.policy.sigma = std::numeric_limits<std::uint32_t>::max();
  cfg.window_s = telemetry::StreamingConfig::window_from_env();
  cfg.num_files = ds.corpus.files.size();
  cfg.trusted = false;
  telemetry::StreamingCollectionServer server(std::move(cfg), ds.corpus.urls);

  std::vector<telemetry::EventWindow> windows;
  std::vector<telemetry::DeliveredReport> buffer;
  out.ingest_ms = time_ms([&] {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(n, begin + chunk);
      buffer.clear();
      buffer.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        buffer.push_back(telemetry::DeliveredReport{
            events[i], static_cast<std::uint64_t>(i), events[i].time(), 0,
            false});
      server.ingest(buffer, windows);
    }
    server.finish(windows);
  });
  out.windows = windows.size();
  out.conserved = server.conserved();
  out.ingest_events_per_sec =
      out.ingest_ms > 0 ? 1000.0 * static_cast<double>(n) / out.ingest_ms
                        : 0.0;

  deploy::OnlineLabeler labeler(ds, annotated, {});
  out.serve_ms = time_ms([&] {
    for (const auto& w : windows) labeler.serve(w);
    labeler.finish();
  });
  out.peak_window_events = labeler.peak_window_events();
  out.freshness = labeler.freshness();
  return out;
}

inline std::string streaming_json(const StreamingReplayStats& s) {
  return JsonObject()
      .field("windows", s.windows)
      .field("events", s.events)
      .field("peak_window_events", s.peak_window_events)
      .field("conserved", s.conserved)
      .field("ingest_ms", s.ingest_ms)
      .field("ingest_events_per_sec", s.ingest_events_per_sec)
      .field("serve_ms", s.serve_ms)
      .field("files_reported", s.freshness.files_reported)
      .field("files_labeled", s.freshness.files_labeled)
      .field("files_pending", s.freshness.files_pending)
      .field("freshness_p50_s", s.freshness.p50_s)
      .field("freshness_p90_s", s.freshness.p90_s)
      .field("freshness_p99_s", s.freshness.p99_s)
      .field("freshness_max_s", s.freshness.max_s)
      .field("freshness_mean_s", s.freshness.mean_s)
      .str();
}

}  // namespace longtail::bench
