// Reproduces Table XIV: categories of benign processes downloading unknown
// files. Paper: browsers 1,120,855; windows 368,925; java 227; acrobat
// 264; other 36,059; total 1,486,961.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table XIV: process categories downloading unknowns",
                      "Unknown files per benign downloading-process "
                      "category.");

  constexpr std::uint64_t kPaper[] = {1'120'855, 368'925, 227, 264, 36'059};

  const auto pipeline = bench::make_pipeline();
  const auto unknowns =
      analysis::unknown_downloads_by_category(pipeline.annotated());

  util::TextTable table({"Downloading process type", "# unknown files",
                         "Paper (full scale)"});
  for (std::size_t c = 0; c < model::kNumProcessCategories; ++c) {
    table.add_row(
        {std::string(to_string(static_cast<model::ProcessCategory>(c))),
         util::with_commas(unknowns.by_category[c]),
         util::with_commas(kPaper[c])});
  }
  table.add_row({"Total", util::with_commas(unknowns.total), "1,486,961"});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
