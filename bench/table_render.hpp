// Body rendering for Table I and Table VI, shared between the bench
// binaries (bench/table01_monthly.cpp, bench/table06_signed.cpp) and the
// migration-equivalence gate in tests/pipeline_determinism_test.cpp. The
// rendered strings are the byte-exact table bodies the binaries print, so
// the determinism test can pin their hashes and catch any stdout drift a
// container migration (e.g. std::unordered_map -> util::FlatMap) would
// introduce without shelling out to the binaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/monthly.hpp"
#include "analysis/signers.hpp"
#include "util/table.hpp"

namespace longtail::bench {

// Table I body: one row per collection month plus the overall row, with
// the paper's reference column. Byte-identical to what table01_monthly
// prints after its header.
inline std::string render_table01(const analysis::MonthlySummary& summary) {
  // clang-format off
  constexpr struct {
    const char* month;
    std::uint64_t machines, events, files;
    double file_mal_pct;
  } kPaperRows[] = {
      {"January", 292'516, 578'510, 366'981, 7.9},
      {"February", 246'481, 470'291, 296'362, 8.9},
      {"March", 248'568, 493'487, 312'662, 9.6},
      {"April", 215'693, 427'110, 258'752, 12.6},
      {"May", 180'947, 351'271, 218'156, 12.5},
      {"June", 176'463, 351'509, 206'309, 14.0},
      {"July", 157'457, 323'159, 188'564, 12.6},
  };
  // clang-format on

  util::TextTable table({"Month", "Machines", "Events", "Processes",
                         "proc b/lb/m/lm %", "Files", "file b/lb/m/lm %",
                         "URLs", "url b/m %",
                         "paper: machines/events/mal%"});
  auto row_cells = [](const analysis::MonthlyRow& r) {
    return std::vector<std::string>{
        util::with_commas(r.machines),
        util::with_commas(r.events),
        util::with_commas(r.processes),
        util::pct(r.proc_benign) + "/" + util::pct(r.proc_likely_benign) +
            "/" + util::pct(r.proc_malicious) + "/" +
            util::pct(r.proc_likely_malicious),
        util::with_commas(r.files),
        util::pct(r.file_benign) + "/" + util::pct(r.file_likely_benign) +
            "/" + util::pct(r.file_malicious) + "/" +
            util::pct(r.file_likely_malicious),
        util::with_commas(r.urls),
        util::pct(r.url_benign) + "/" + util::pct(r.url_malicious),
    };
  };

  for (std::size_t m = 0; m < model::kNumCollectionMonths; ++m) {
    auto cells = row_cells(summary.months[m]);
    cells.insert(cells.begin(), std::string(kPaperRows[m].month));
    cells.push_back(util::with_commas(kPaperRows[m].machines) + "/" +
                    util::with_commas(kPaperRows[m].events) + "/" +
                    util::pct(kPaperRows[m].file_mal_pct));
    table.add_row(std::move(cells));
  }
  auto overall = row_cells(summary.overall);
  overall.insert(overall.begin(), "Overall");
  overall.push_back("1,139,183/3,073,863/9.9%");
  table.add_row(std::move(overall));
  return table.render();
}

// Table VI body: signing rates per malware type plus the class rows.
// Byte-identical to what table06_signed prints after its header.
inline std::string render_table06(const analysis::SigningRates& rates) {
  // Paper reference: {overall signed %, browser signed %} (blank cells in
  // the original scan marked with -1).
  // clang-format off
  constexpr struct {
    double overall, browser;
  } kPaper[] = {
      {85.6, -1},  {76.0, 79.6}, {-1, 91.8},  {-1, -1},   {1.2, 1.8},
      {1.5, 2.2},  {2.8, 4.5},   {44.4, 68.7}, {5.5, 12.3}, {21.2, 25.0},
      {65.1, 71.3},
  };
  // clang-format on

  util::TextTable table({"Type", "# files", "Signed", "# browser files",
                         "Browser signed", "paper signed/browser"});
  auto paper_cell = [](double overall, double browser) {
    auto fmt = [](double v) {
      return v < 0 ? std::string("n/a") : util::pct(v);
    };
    return fmt(overall) + " / " + fmt(browser);
  };
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    const auto& row = rates.per_type[t];
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   util::with_commas(row.files), util::pct(row.signed_pct),
                   util::with_commas(row.browser_files),
                   util::pct(row.browser_signed_pct),
                   paper_cell(kPaper[t].overall, kPaper[t].browser)});
  }
  table.add_row({"benign", util::with_commas(rates.benign.files),
                 util::pct(rates.benign.signed_pct),
                 util::with_commas(rates.benign.browser_files),
                 util::pct(rates.benign.browser_signed_pct),
                 paper_cell(30.7, 32.1)});
  table.add_row({"unknown", util::with_commas(rates.unknown.files),
                 util::pct(rates.unknown.signed_pct),
                 util::with_commas(rates.unknown.browser_files),
                 util::pct(rates.unknown.browser_signed_pct),
                 paper_cell(38.4, 42.1)});
  table.add_row({"malicious (all)", util::with_commas(rates.malicious.files),
                 util::pct(rates.malicious.signed_pct),
                 util::with_commas(rates.malicious.browser_files),
                 util::pct(rates.malicious.browser_signed_pct),
                 paper_cell(66.0, 81.0)});
  return table.render();
}

}  // namespace longtail::bench
