// Reproduces Table VIII: top signers of each file type — overall, in
// common with benign files, and exclusive to malware. The paper's
// standout: droppers' top signer is "Softonic International" (bundled
// installers from download portals).
#include "bench_common.hpp"

namespace {

std::string join(const std::vector<longtail::analysis::SignerCount>& v) {
  std::string out;
  for (const auto& [name, count] : v) {
    if (!out.empty()) out += "; ";
    out += std::string(name) + " (" + std::to_string(count) + ")";
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  using namespace longtail;
  bench::print_header("Table VIII: top signers of different file types",
                      "Per type: top 3 overall / common-with-benign / "
                      "malware-exclusive signers.");

  const auto pipeline = bench::make_pipeline();
  const auto top = analysis::top_signers(pipeline.annotated());

  util::TextTable table(
      {"Type", "Top signers", "Top common with benign", "Top exclusive"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    const auto& row = top.per_type[t];
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   join(row.top), join(row.top_common),
                   join(row.top_exclusive)});
  }
  table.add_row({"malicious (total)", join(top.malicious_total.top),
                 join(top.malicious_total.top_common),
                 join(top.malicious_total.top_exclusive)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
