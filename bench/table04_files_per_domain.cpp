// Reproduces Table IV: number of unique files served per domain (top 10
// for benign and malicious). The paper notes a "notable overlap" between
// the two columns — softonic.com and mediafire.com host the most of both.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Table IV: number of files served per domain (top 10)",
      "Paper: malicious column led by softonic.com (21,355 files), "
      "nzs.com.br, mediafire.com, baixaki.com.br, ...");

  const auto pipeline = bench::make_pipeline();
  const auto counts = analysis::files_per_domain(pipeline.annotated());

  util::TextTable table(
      {"#", "Benign domain", "# files", "Malicious domain", "# files"});
  const std::size_t rows =
      std::max(counts.benign.size(), counts.malicious.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell = [&](const std::vector<analysis::DomainCount>& v,
                    std::size_t k) -> std::pair<std::string, std::string> {
      if (k >= v.size()) return {"-", "-"};
      return {std::string(v[k].first), util::with_commas(v[k].second)};
    };
    const auto [bd, bc] = cell(counts.benign, i);
    const auto [md, mc] = cell(counts.malicious, i);
    table.add_row({std::to_string(i + 1), bd, bc, md, mc});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nDomains in both top-10 columns: %zu (the paper's overlap "
              "observation)\n",
              counts.overlap_in_top);
  return 0;
}
