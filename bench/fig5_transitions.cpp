// Reproduces Fig. 5: CDF of the time between downloading a benign /
// adware / PUP / dropper file and the machine's next download of *other*
// malware. Paper shapes: >40% of adware/PUP machines transition on day 0
// and >55% within five days; droppers transition fastest; the benign
// control stays around 20% at day five.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Fig. 5: time delta from benign/adware/pup/dropper to other malware",
      "Fraction of initiator machines that downloaded other malware within "
      "d days.\nPaper: adware/pup day0 > 40%, day5 > 55%; dropper fastest; "
      "benign ~20% at day5.");

  const auto pipeline = bench::make_pipeline();
  const auto analysis = analysis::transition_analysis(pipeline.annotated());

  util::TextTable table({"Day", "benign", "adware", "pup", "dropper"});
  for (const std::size_t d : {0u, 1u, 2u, 3u, 5u, 7u, 10u, 15u, 20u, 30u}) {
    table.add_row({std::to_string(d),
                   util::pct(100 * analysis.benign.at_day(d)),
                   util::pct(100 * analysis.adware.at_day(d)),
                   util::pct(100 * analysis.pup.at_day(d)),
                   util::pct(100 * analysis.dropper.at_day(d))});
  }
  std::fputs(table.render().c_str(), stdout);

  auto line = [](const char* name,
                 const longtail::analysis::TransitionCurve& c) {
    std::printf("  %-8s %s initiator machines, %s eventually transitioned\n",
                name, util::with_commas(c.initiator_machines).c_str(),
                util::with_commas(c.transitioned).c_str());
  };
  std::printf("\n");
  line("benign", analysis.benign);
  line("adware", analysis.adware);
  line("pup", analysis.pup);
  line("dropper", analysis.dropper);
  return 0;
}
