// Extension experiment: sensitivity to the collection server's prevalence
// cap sigma (§II-A; the study used sigma=20 and reports that only ~0.25%
// of files were capped). The sweep regenerates the corpus under different
// caps and measures how much of the event stream and of the prevalence
// distribution the cap costs.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: collection-server prevalence-cap (sigma) sweep",
      "Paper setting: sigma=20; 99.75% of files never reach it.");

  const double scale = bench::bench_scale(0.05);
  util::TextTable table({"sigma", "Accepted events", "Dropped by cap",
                         "Files at cap", "Prevalence-1 files"});
  for (const std::uint32_t sigma : {5u, 10u, 20u, 50u, 1'000'000u}) {
    auto profile = synth::paper_calibration(scale);
    profile.sigma = sigma;
    const auto pipeline = core::LongtailPipeline(profile);
    const auto dist = analysis::prevalence_distributions(
        pipeline.annotated(), std::min(sigma, 1'000u));
    const auto& stats = pipeline.dataset().collection_stats;
    table.add_row({sigma > 1'000u ? "none" : std::to_string(sigma),
                   util::with_commas(stats.accepted),
                   util::with_commas(stats.dropped_prevalence_cap),
                   util::pct(100 * dist.at_cap_fraction, 2),
                   util::pct(100 * dist.prevalence_one_fraction)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe long tail is cap-insensitive: prevalence-1 mass barely moves, "
      "while aggressive caps\n(sigma=5) start discarding the popular-file "
      "head the reputation systems rely on.\n");
  return 0;
}
