// Extension experiment: sensitivity to the collection server's prevalence
// cap sigma (§II-A; the study used sigma=20 and reports that only ~0.25%
// of files were capped). The sweep regenerates the corpus under different
// caps and measures how much of the event stream and of the prevalence
// distribution the cap costs.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: collection-server prevalence-cap (sigma) sweep",
      "Paper setting: sigma=20; 99.75% of files never reach it.");

  const double scale = bench::bench_scale(0.05);
  util::TextTable table({"sigma", "Accepted events", "Dropped by cap",
                         "Files at cap", "Prevalence-1 files"});
  // Each sigma regenerates the corpus from scratch; the sweep points are
  // independent, so they fan out across the global pool. Row order (and
  // every number) is identical to the serial sweep.
  const std::vector<std::uint32_t> sigmas = {5u, 10u, 20u, 50u, 1'000'000u};
  struct SweepRow {
    std::uint32_t sigma = 0;
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;
    double at_cap = 0;
    double prevalence_one = 0;
  };
  const auto rows = util::parallel_map(sigmas.size(), [&](std::size_t i) {
    const std::uint32_t sigma = sigmas[i];
    auto profile = synth::paper_calibration(scale);
    profile.sigma = sigma;
    const auto pipeline = core::LongtailPipeline(profile);
    const auto dist = analysis::prevalence_distributions(
        pipeline.annotated(), std::min(sigma, 1'000u));
    const auto& stats = pipeline.dataset().collection_stats;
    return SweepRow{sigma, stats.accepted, stats.dropped_prevalence_cap,
                    dist.at_cap_fraction, dist.prevalence_one_fraction};
  });
  for (const auto& row : rows) {
    table.add_row({row.sigma > 1'000u ? "none" : std::to_string(row.sigma),
                   util::with_commas(row.accepted),
                   util::with_commas(row.dropped),
                   util::pct(100 * row.at_cap, 2),
                   util::pct(100 * row.prevalence_one)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe long tail is cap-insensitive: prevalence-1 mass barely moves, "
      "while aggressive caps\n(sigma=5) start discarding the popular-file "
      "head the reputation systems rely on.\n");
  return 0;
}
