// Reproduces Table I: monthly summary of the data collected by the AMV —
// machines, download events, and the verdict breakdown of processes,
// files, and URLs. The body lives in table_render.hpp so the migration
// gate in pipeline_determinism_test can pin the same bytes.
#include "bench_common.hpp"
#include "table_render.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Table I: monthly summary of collected download events",
      "Counts scale linearly with LONGTAIL_SCALE; percentages are "
      "scale-free.\nPaper overall row: 1,139,183 machines; 3,073,863 "
      "events; files 2.3% benign / 2.5% likely-benign / 9.9% malicious / "
      "2.3% likely-malicious; URLs 29.8% benign / 15.1% malicious.");

  const auto pipeline = bench::make_pipeline();
  const auto summary = analysis::monthly_summary(pipeline.annotated());
  std::fputs(bench::render_table01(summary).c_str(), stdout);
  return 0;
}
