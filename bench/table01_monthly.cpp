// Reproduces Table I: monthly summary of the data collected by the AMV —
// machines, download events, and the verdict breakdown of processes,
// files, and URLs.
#include "bench_common.hpp"

namespace {

using namespace longtail;

constexpr struct {
  const char* month;
  std::uint64_t machines, events, files;
  double file_mal_pct;
} kPaperRows[] = {
    {"January", 292'516, 578'510, 366'981, 7.9},
    {"February", 246'481, 470'291, 296'362, 8.9},
    {"March", 248'568, 493'487, 312'662, 9.6},
    {"April", 215'693, 427'110, 258'752, 12.6},
    {"May", 180'947, 351'271, 218'156, 12.5},
    {"June", 176'463, 351'509, 206'309, 14.0},
    {"July", 157'457, 323'159, 188'564, 12.6},
};

}  // namespace

int main() {
  bench::print_header(
      "Table I: monthly summary of collected download events",
      "Counts scale linearly with LONGTAIL_SCALE; percentages are "
      "scale-free.\nPaper overall row: 1,139,183 machines; 3,073,863 "
      "events; files 2.3% benign / 2.5% likely-benign / 9.9% malicious / "
      "2.3% likely-malicious; URLs 29.8% benign / 15.1% malicious.");

  const auto pipeline = bench::make_pipeline();
  const auto summary = analysis::monthly_summary(pipeline.annotated());

  util::TextTable table(
      {"Month", "Machines", "Events", "Processes",
       "proc b/lb/m/lm %", "Files", "file b/lb/m/lm %", "URLs",
       "url b/m %", "paper: machines/events/mal%"});
  auto row_cells = [](const analysis::MonthlyRow& r) {
    return std::vector<std::string>{
        util::with_commas(r.machines),
        util::with_commas(r.events),
        util::with_commas(r.processes),
        util::pct(r.proc_benign) + "/" + util::pct(r.proc_likely_benign) +
            "/" + util::pct(r.proc_malicious) + "/" +
            util::pct(r.proc_likely_malicious),
        util::with_commas(r.files),
        util::pct(r.file_benign) + "/" + util::pct(r.file_likely_benign) +
            "/" + util::pct(r.file_malicious) + "/" +
            util::pct(r.file_likely_malicious),
        util::with_commas(r.urls),
        util::pct(r.url_benign) + "/" + util::pct(r.url_malicious),
    };
  };

  for (std::size_t m = 0; m < model::kNumCollectionMonths; ++m) {
    auto cells = row_cells(summary.months[m]);
    cells.insert(cells.begin(), std::string(kPaperRows[m].month));
    cells.push_back(util::with_commas(kPaperRows[m].machines) + "/" +
                    util::with_commas(kPaperRows[m].events) + "/" +
                    util::pct(kPaperRows[m].file_mal_pct));
    table.add_row(std::move(cells));
  }
  auto overall = row_cells(summary.overall);
  overall.insert(overall.begin(), "Overall");
  overall.push_back("1,139,183/3,073,863/9.9%");
  table.add_row(std::move(overall));

  std::fputs(table.render().c_str(), stdout);
  return 0;
}
