// Degradation-evaluation sweep: replays the pipeline through the
// fault-injection transport (telemetry/transport.hpp) at the named fault
// profiles (off / mild / moderate / severe) and reports how far the
// headline reproduction numbers drift from the fault-free baseline —
// the §IV-A unknown-file share (paper: 83% of distinct files) and unknown
// machine coverage (paper: 69%), and the §VI Mar→Apr rule TP/FP rates at
// tau = 0.1% (Tables XVI/XVII).
//
// Every faulted run is deterministic: the sweep re-generates the moderate
// profile at LONGTAIL_THREADS = 1, 2, 8 and asserts bit-identical dataset
// fingerprints. Results go to BENCH_robustness.json (schema pinned in CI)
// together with the metrics snapshot carrying the telemetry.transport.*
// and telemetry.quarantine.* counters.
#include <utility>
#include <vector>

#include "sweep_common.hpp"

namespace {

using namespace longtail;

struct SweepRun {
  std::string name;
  telemetry::FaultProfile faults;
  telemetry::TransportStats transport;
  telemetry::CollectionStats collection;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  bool conservation = true;
  bench::HeadlineMetrics headline;
};

SweepRun measure(const std::string& name, double scale,
                 const telemetry::FaultProfile& faults) {
  auto profile = synth::paper_calibration(scale);
  profile.faults = faults;

  SweepRun run;
  run.name = name;
  run.faults = faults;

  auto ds = synth::generate_dataset(profile);
  run.transport = ds.transport_stats;
  run.collection = ds.collection_stats;
  run.events = ds.corpus.events.size();
  run.fingerprint = core::dataset_fingerprint(ds);
  // Conservation: every delivered copy is accounted for by exactly one
  // collection counter (on the fault-free path the server sees the raw
  // stream instead of the transport's).
  const std::uint64_t seen = run.collection.total_seen();
  run.conservation = faults.transport_active()
                         ? seen == run.transport.delivered
                         : run.transport.reports_offered == 0;

  const core::LongtailPipeline pipeline(std::move(ds));
  run.headline = bench::measure_headline(pipeline);
  return run;
}

std::string headline_json(const SweepRun& r) {
  return bench::headline_json(r.headline, r.events, r.fingerprint);
}

}  // namespace

int main() {
  util::metrics::set_enabled(true);
  const double scale = bench::bench_scale(0.05);
  bench::print_header(
      "Robustness: headline drift under transport/label faults",
      "Sweeps the named fault profiles through the agent->server transport "
      "and the VT feed.\nPaper baselines: 83% unknown files, 69% unknown "
      "machine coverage (scale-free).");
  std::printf("[longtail] sweep at scale %.2f (LONGTAIL_SCALE to override)\n\n",
              scale);

  const SweepRun baseline = measure("off", scale, telemetry::FaultProfile{});
  std::vector<SweepRun> runs;
  for (const char* name : {"mild", "moderate", "severe"})
    runs.push_back(measure(name, scale, *telemetry::named_fault_profile(name)));

  util::TextTable table({"Profile", "Delivered", "Dup", "Quar", "Stale",
                         "Accepted", "Unk file %", "Unk mach %", "Rule TP %",
                         "Rule FP %"});
  auto add_row = [&](const SweepRun& r) {
    table.add_row({r.name, util::with_commas(r.transport.delivered),
                   util::with_commas(r.collection.dropped_duplicate),
                   util::with_commas(r.collection.quarantined_malformed),
                   util::with_commas(r.collection.dropped_stale),
                   util::with_commas(r.collection.accepted),
                   util::pct(r.headline.unknown_file_pct),
                   util::pct(r.headline.unknown_machine_pct),
                   util::pct(r.headline.rule_tp_rate),
                   util::pct(r.headline.rule_fp_rate)});
  };
  add_row(baseline);
  for (const auto& r : runs) add_row(r);
  std::fputs(table.render().c_str(), stdout);

  bool conservation = baseline.conservation;
  std::string profiles_json = "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    conservation = conservation && r.conservation;
    if (i > 0) profiles_json += ", ";
    const auto transport_json =
        bench::JsonObject()
            .field("reports_offered", r.transport.reports_offered)
            .field("dropped_offline", r.transport.dropped_offline)
            .field("delivered", r.transport.delivered)
            .field("duplicates", r.transport.duplicates)
            .field("corrupted", r.transport.corrupted)
            .str();
    const auto collection_json =
        bench::JsonObject()
            .field("accepted", r.collection.accepted)
            .field("dropped_not_executed", r.collection.dropped_not_executed)
            .field("dropped_prevalence_cap",
                   r.collection.dropped_prevalence_cap)
            .field("dropped_whitelisted_url",
                   r.collection.dropped_whitelisted_url)
            .field("dropped_duplicate", r.collection.dropped_duplicate)
            .field("quarantined_malformed", r.collection.quarantined_malformed)
            .field("dropped_stale", r.collection.dropped_stale)
            .str();
    const auto drift_json =
        bench::headline_drift_json(r.headline, baseline.headline);
    profiles_json += bench::JsonObject()
                         .field("name", std::string_view(r.name))
                         .field("spec", std::string_view(r.faults.spec()))
                         .field("conservation", r.conservation)
                         .raw("transport", transport_json)
                         .raw("collection", collection_json)
                         .raw("headline", headline_json(r))
                         .raw("drift", drift_json)
                         .str();
  }
  profiles_json += "]";

  // Determinism across thread counts: the moderate profile must produce
  // the same dataset at 1, 2, and 8 threads.
  auto det_profile = synth::paper_calibration(scale);
  det_profile.faults = *telemetry::named_fault_profile("moderate");
  bool deterministic = true;
  std::uint64_t det_fingerprint = 0;
  for (const unsigned t : {1u, 2u, 8u}) {
    util::set_global_threads(t);
    const auto ds = synth::generate_dataset(det_profile);
    const std::uint64_t fp = core::dataset_fingerprint(ds);
    if (det_fingerprint == 0) det_fingerprint = fp;
    deterministic = deterministic && fp == det_fingerprint;
  }
  util::set_global_threads(util::ThreadPool::default_threads());

  std::printf(
      "\nDrift vs fault-free baseline (percentage points):\n"
      "  mild     unk file %+0.2f, unk mach %+0.2f, TP %+0.2f, FP %+0.2f\n"
      "  moderate unk file %+0.2f, unk mach %+0.2f, TP %+0.2f, FP %+0.2f\n"
      "  severe   unk file %+0.2f, unk mach %+0.2f, TP %+0.2f, FP %+0.2f\n"
      "Conservation (accepted + drops + quarantine == delivered): %s\n"
      "Deterministic across LONGTAIL_THREADS {1,2,8}: %s\n",
      runs[0].headline.unknown_file_pct - baseline.headline.unknown_file_pct,
      runs[0].headline.unknown_machine_pct -
          baseline.headline.unknown_machine_pct,
      runs[0].headline.rule_tp_rate - baseline.headline.rule_tp_rate,
      runs[0].headline.rule_fp_rate - baseline.headline.rule_fp_rate,
      runs[1].headline.unknown_file_pct - baseline.headline.unknown_file_pct,
      runs[1].headline.unknown_machine_pct -
          baseline.headline.unknown_machine_pct,
      runs[1].headline.rule_tp_rate - baseline.headline.rule_tp_rate,
      runs[1].headline.rule_fp_rate - baseline.headline.rule_fp_rate,
      runs[2].headline.unknown_file_pct - baseline.headline.unknown_file_pct,
      runs[2].headline.unknown_machine_pct -
          baseline.headline.unknown_machine_pct,
      runs[2].headline.rule_tp_rate - baseline.headline.rule_tp_rate,
      runs[2].headline.rule_fp_rate - baseline.headline.rule_fp_rate,
      conservation ? "yes" : "NO", deterministic ? "yes" : "NO");

  const auto json = bench::JsonObject()
                        .field("bench", std::string_view("robustness"))
                        .field("scale", scale)
                        .raw("run", bench::run_manifest_json(
                                        scale, baseline.fingerprint))
                        .raw("baseline", headline_json(baseline))
                        .raw("profiles", profiles_json)
                        .field("conservation", conservation)
                        .field("deterministic", deterministic)
                        .raw("metrics", util::metrics::snapshot_json())
                        .str();
  bench::write_bench_json("BENCH_robustness.json", json);
  return (conservation && deterministic) ? 0 : 1;
}
