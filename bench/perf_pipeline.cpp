// google-benchmark microbenchmarks for the data pipeline: corpus
// generation, collection-server filtering, index construction, and
// labeling/annotation throughput.
//
// In addition to the micro suite, main() times the full pipeline
// end-to-end under LONGTAIL_THREADS = 1, 2, 8 (plus the environment's
// setting) and writes the results to BENCH_pipeline.json so the perf
// trajectory — wall time, events/sec, parallel speedup, and the
// determinism fingerprint — is tracked from commit to commit.
// LONGTAIL_BENCH_MICRO=0 skips the micro suite (CI uses this to get the
// trajectory quickly); LONGTAIL_BENCH_JSON overrides the output path.
//
// LONGTAIL_BENCH_FULLSCALE=<scale> additionally runs the scale-1.0-class
// memory benchmark: the corpus is saved as a sectioned LTCP file once,
// then re-executed in two child processes (owned loader vs mmap zero-copy
// loader) that each stream the event columns through the scan layer and
// report their own peak RSS — ru_maxrss is monotone per process, so the
// two load paths can only be compared across processes. Results land in
// the "fullscale" object of BENCH_pipeline.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/streaming.hpp"
#include "bench_common.hpp"
#include "core/longtail.hpp"
#include "deploy/online.hpp"
#include "synth/feed.hpp"
#include "telemetry/binary.hpp"
#include "telemetry/mapped.hpp"
#include "telemetry/scan.hpp"
#include "telemetry/streaming.hpp"

namespace {

using namespace longtail;

void BM_GenerateDataset(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto ds = synth::generate_dataset(scale);
    events = ds.corpus.events.size();
    benchmark::DoNotOptimize(ds);
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_GenerateDataset)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_CollectionFilter(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    telemetry::CollectionServer server(
        telemetry::CollectionPolicy{.sigma = 20, .whitelisted_domains = {}});
    auto accepted = server.filter(ds.corpus.events, ds.corpus.urls);
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_CollectionFilter)->Unit(benchmark::kMillisecond);

void BM_BuildIndex(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    telemetry::CorpusIndex index(ds.corpus);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_BuildIndex)->Unit(benchmark::kMillisecond);

void BM_Annotate(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
    benchmark::DoNotOptimize(annotated);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.files.size()) * state.iterations());
}
BENCHMARK(BM_Annotate)->Unit(benchmark::kMillisecond);

void BM_MonthlySummary(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  const auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
  for (auto _ : state) {
    auto summary = analysis::monthly_summary(annotated);
    benchmark::DoNotOptimize(summary);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_MonthlySummary)->Unit(benchmark::kMillisecond);

void BM_TransitionAnalysis(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  const auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
  for (auto _ : state) {
    auto curves = analysis::transition_analysis(annotated);
    benchmark::DoNotOptimize(curves);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_TransitionAnalysis)->Unit(benchmark::kMillisecond);

// One end-to-end pipeline pass; returns per-stage wall times and enough
// output to assert thread-count independence.
struct TrajectoryRun {
  unsigned threads = 0;
  double generate_ms = 0;
  double resolve_events_ms = 0;  // event-resolution slice of generate_ms
  double annotate_ms = 0;
  double analysis_ms = 0;
  double experiments_ms = 0;
  double eval_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t analysis_checksum = 0;
  std::uint64_t eval_checksum = 0;

  [[nodiscard]] double total_ms() const {
    return generate_ms + annotate_ms + analysis_ms + experiments_ms + eval_ms;
  }
};

// The measurement-study bundle: the §IV/§V passes that now run on the
// shared corpus-scan layer. The checksum pins their outputs across thread
// counts.
std::uint64_t run_analysis_bundle(const analysis::AnnotatedCorpus& a) {
  std::uint64_t sum = 0;
  const auto monthly = analysis::monthly_summary(a);
  sum = sum * 1'000'003 + monthly.overall.events + monthly.overall.files;
  const auto rates = analysis::signing_rates(a);
  sum = sum * 1'000'003 + rates.benign.files + rates.malicious.files;
  const auto prevalence = analysis::prevalence_distributions(a);
  sum = sum * 1'000'003 + prevalence.all.size();
  const auto popularity = analysis::domain_popularity(a);
  sum = sum * 1'000'003 + popularity.overall.size();
  const auto transitions = analysis::transition_analysis(a);
  sum = sum * 1'000'003 + transitions.adware.transitioned +
        transitions.dropper.initiator_machines;
  const auto behavior = analysis::malicious_process_behavior(a);
  sum = sum * 1'000'003 + behavior.overall.machines;
  return sum;
}

TrajectoryRun run_trajectory_pass(double scale, unsigned threads) {
  util::set_global_threads(threads);
  TrajectoryRun run;
  run.threads = threads;

  synth::Dataset dataset;
  // The resolve_events slice comes from the stage histogram (metrics are
  // enabled for the trajectory): delta around the generate call isolates
  // this pass from the accumulated snapshot.
  const double resolve_before =
      util::metrics::histogram("synth.resolve_events_ms").sum_ms();
  run.generate_ms = bench::time_ms([&] {
    dataset = synth::generate_dataset(synth::paper_calibration(scale));
  });
  run.resolve_events_ms =
      util::metrics::histogram("synth.resolve_events_ms").sum_ms() -
      resolve_before;
  run.events = dataset.corpus.events.size();
  run.fingerprint = core::dataset_fingerprint(dataset);

  std::unique_ptr<core::LongtailPipeline> pipeline;
  run.annotate_ms = bench::time_ms([&] {
    pipeline =
        std::make_unique<core::LongtailPipeline>(std::move(dataset));
  });

  run.analysis_ms = bench::time_ms([&] {
    run.analysis_checksum = run_analysis_bundle(pipeline->annotated());
  });

  // The §VI fan-out: one rule experiment per consecutive month window.
  std::vector<std::pair<model::Month, model::Month>> windows;
  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m)
    windows.emplace_back(static_cast<model::Month>(m),
                         static_cast<model::Month>(m + 1));
  std::vector<core::RuleExperiment> experiments;
  run.experiments_ms = bench::time_ms(
      [&] { experiments = pipeline->run_rule_experiments(windows); });

  const std::vector<double> taus = {0.0, 0.001};
  run.eval_ms = bench::time_ms([&] {
    for (const auto& exp : experiments) {
      const auto evals = core::LongtailPipeline::evaluate_taus(exp, taus);
      for (const auto& eval : evals) {
        run.eval_checksum = run.eval_checksum * 1'000'003 +
                            eval.eval.true_positives * 31 +
                            eval.eval.false_positives * 7 +
                            eval.expansion.labeled_malicious;
      }
    }
  });
  return run;
}

// ---- fullscale memory benchmark ---------------------------------------

// Events per streaming chunk in the fullscale scan. Large enough that
// shard dispatch is noise, small enough that the mapped path's
// release-behind keeps only a sliver of the columns resident.
constexpr std::size_t kFullscaleChunk = 256 * 1024;

struct FullscaleScanAcc {
  std::uint64_t h = 0;
  std::uint64_t executed = 0;
};

// One deterministic streaming pass over the event columns through the
// shared scan layer, chunked so the mapped path can release consumed
// pages behind itself. Returns a checksum that must agree between the
// owned and mapped children.
FullscaleScanAcc fullscale_scan(const telemetry::Corpus& corpus,
                                const telemetry::MappedCorpus* mapped) {
  FullscaleScanAcc total;
  const std::size_t n = corpus.events.size();
  for (std::size_t begin = 0; begin < n; begin += kFullscaleChunk) {
    const std::size_t end = std::min(n, begin + kFullscaleChunk);
    const auto chunk = telemetry::scan_reduce(
        corpus, begin, end, [] { return FullscaleScanAcc{}; },
        [](FullscaleScanAcc& acc, const telemetry::EventStore::EventRef& ev) {
          acc.h = acc.h * 1'000'003 +
                  static_cast<std::uint64_t>(ev.time()) + ev.url().raw() +
                  ev.file().raw() * 31 + ev.machine().raw() * 7 +
                  ev.process().raw() * 3;
          acc.executed += ev.executed() ? 1 : 0;
        },
        [](FullscaleScanAcc& t, FullscaleScanAcc&& s) {
          t.h = t.h * 16'777'619 + s.h;
          t.executed += s.executed;
        },
        "fullscale");
    total.h = total.h * 16'777'619 + chunk.h;
    total.executed += chunk.executed;
    if (mapped != nullptr) mapped->release_events_before(end);
  }
  return total;
}

// Child process body: load the LTCP corpus via one of the two paths, run
// the streaming scan, and report {load_ms, scan_ms, events_per_sec,
// checksum, max_rss_mb} as JSON to LONGTAIL_FULLSCALE_OUT.
int run_fullscale_child() {
  const char* mode_env = std::getenv("LONGTAIL_FULLSCALE_CHILD");
  const char* corpus_env = std::getenv("LONGTAIL_FULLSCALE_CORPUS");
  const char* out_env = std::getenv("LONGTAIL_FULLSCALE_OUT");
  if (mode_env == nullptr || corpus_env == nullptr || out_env == nullptr) {
    std::fprintf(stderr, "fullscale child: missing environment\n");
    return 1;
  }
  const std::string mode = mode_env;
  const bool use_mmap = mode == "mapped";

  telemetry::Corpus corpus;
  std::unique_ptr<telemetry::MappedCorpus> mapped;
  const double load_ms = bench::time_ms([&] {
    if (use_mmap) {
      // Zero-copy: only the event columns are needed for the scan, so the
      // metadata sections are never materialized.
      mapped = std::make_unique<telemetry::MappedCorpus>(
          telemetry::MappedCorpus::open(corpus_env));
      corpus.events = mapped->events();
      corpus.machine_count = mapped->machine_count();
    } else {
      corpus = telemetry::load_binary(corpus_env);
    }
  });

  FullscaleScanAcc acc;
  const double scan_ms =
      bench::time_ms([&] { acc = fullscale_scan(corpus, mapped.get()); });
  const std::uint64_t events = corpus.events.size();

  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "0x%016llx",
                static_cast<unsigned long long>(acc.h));
  const auto json =
      bench::JsonObject()
          .field("load_path", std::string_view(use_mmap ? "mapped" : "owned"))
          .field("load_ms", load_ms)
          .field("scan_ms", scan_ms)
          .field("events", events)
          .field("events_per_sec",
                 scan_ms > 0 ? 1000.0 * static_cast<double>(events) / scan_ms
                             : 0.0)
          .field("executed", acc.executed)
          .field("checksum", std::string_view(checksum))
          .field("max_rss_mb", bench::max_rss_mb())
          .str();
  if (std::FILE* f = std::fopen(out_env, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    return 0;
  }
  std::fprintf(stderr, "fullscale child: cannot write %s\n", out_env);
  return 1;
}

// Naive field extraction from the (trusted, self-produced) child JSON.
double json_number_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

std::string json_string_field(const std::string& json,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t begin = pos + needle.size();
  const std::size_t end = json.find('"', begin);
  return json.substr(begin, end - begin);
}

// Parent side: ensure the LTCP corpus file exists at the requested scale,
// run one child per load path, and assemble the comparison. Returns the
// rendered "fullscale" JSON object, or "" when the bench is disabled.
std::string run_fullscale_section(const char* argv0) {
  const char* env = std::getenv("LONGTAIL_BENCH_FULLSCALE");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "0")
    return {};
  char* end = nullptr;
  double fscale = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(fscale > 0.0)) fscale = 1.0;

  // The corpus file is keyed by format version and scale; when a corpus
  // cache directory is configured the file persists there (and rides the
  // CI cache), otherwise it lands in the temp directory.
  const char* cache_dir = std::getenv("LONGTAIL_CORPUS_CACHE");
  const std::filesystem::path dir =
      (cache_dir != nullptr && *cache_dir != '\0')
          ? std::filesystem::path(cache_dir)
          : std::filesystem::temp_directory_path();
  char name[96];
  std::snprintf(name, sizeof(name), "longtail_corpus_v%u_s%g.ltcp",
                telemetry::kCorpusBinaryVersion, fscale);
  const std::string corpus_path = (dir / name).string();

  std::printf("\n[longtail] fullscale memory bench at scale %g\n", fscale);
  if (!std::filesystem::exists(corpus_path)) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const double gen_ms = bench::time_ms([&] {
      const auto ds = synth::generate_dataset(synth::paper_calibration(fscale));
      telemetry::save_binary(ds.corpus, corpus_path);
    });
    std::printf("  corpus generated and saved in %.0f ms: %s\n", gen_ms,
                corpus_path.c_str());
  } else {
    std::printf("  corpus reused: %s\n", corpus_path.c_str());
  }

  // One child per load path: ru_maxrss is a per-process high-water mark,
  // so owned and mapped must be measured in separate processes.
  std::string child_json[2];
  const char* modes[2] = {"owned", "mapped"};
  for (int i = 0; i < 2; ++i) {
    const std::string out_path =
        (std::filesystem::temp_directory_path() /
         (std::string("longtail_fullscale_") + modes[i] + ".json"))
            .string();
    ::setenv("LONGTAIL_FULLSCALE_CHILD", modes[i], 1);
    ::setenv("LONGTAIL_FULLSCALE_CORPUS", corpus_path.c_str(), 1);
    ::setenv("LONGTAIL_FULLSCALE_OUT", out_path.c_str(), 1);
    const std::string cmd = "'" + std::string(argv0) + "'";
    const int rc = std::system(cmd.c_str());
    ::unsetenv("LONGTAIL_FULLSCALE_CHILD");
    ::unsetenv("LONGTAIL_FULLSCALE_CORPUS");
    ::unsetenv("LONGTAIL_FULLSCALE_OUT");
    if (rc != 0) {
      std::fprintf(stderr, "[longtail] fullscale %s child failed (rc=%d)\n",
                   modes[i], rc);
      return {};
    }
    if (std::FILE* f = std::fopen(out_path.c_str(), "r")) {
      char buf[4096];
      const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      std::fclose(f);
      child_json[i].assign(buf, n);
      std::filesystem::remove(out_path);
    }
    std::printf("  %-6s load %7.0f ms, scan %7.0f ms, %9.0f events/s, "
                "max_rss %7.1f MB\n",
                modes[i], json_number_field(child_json[i], "load_ms"),
                json_number_field(child_json[i], "scan_ms"),
                json_number_field(child_json[i], "events_per_sec"),
                json_number_field(child_json[i], "max_rss_mb"));
  }

  const double owned_rss = json_number_field(child_json[0], "max_rss_mb");
  const double mapped_rss = json_number_field(child_json[1], "max_rss_mb");
  const double rss_ratio = owned_rss > 0 ? mapped_rss / owned_rss : 0.0;
  const bool equivalent =
      !json_string_field(child_json[0], "checksum").empty() &&
      json_string_field(child_json[0], "checksum") ==
          json_string_field(child_json[1], "checksum");
  std::printf("  mapped/owned rss ratio %.2f, scan checksums %s\n", rss_ratio,
              equivalent ? "equal" : "MISMATCH");

  return bench::JsonObject()
      .field("scale", fscale)
      .raw("owned", child_json[0])
      .raw("mapped", child_json[1])
      .field("rss_ratio", rss_ratio)
      .field("equivalent", equivalent)
      .str();
}

// ---- streaming section -------------------------------------------------
//
// Sustained streaming throughput: the collected corpus is re-ingested
// through the *untrusted* streaming path (dedup set + reorder buffer
// exercised per report) in LONGTAIL_STREAM_CHUNK-sized DeliveredReport
// chunks; the closed windows feed the incremental analytics and the
// online serving loop. The policy is pass-through (unbounded sigma, no
// whitelist), so every event survives ingest and the serving loop sees
// exactly the corpus replay — freshness percentiles are then a pure
// function of the workload. Runs at a pinned thread count as part of the
// fixed workload whose metrics the bench gate compares exactly.
std::string run_streaming_section(const synth::Dataset& dataset) {
  const auto annotated =
      analysis::annotate(dataset.corpus, dataset.whitelist, dataset.vt);
  const auto& events = dataset.corpus.events;
  const std::size_t n = events.size();
  const auto window_s = telemetry::StreamingConfig::window_from_env();
  const std::size_t chunk = synth::ChunkedFeed::chunk_from_env();

  telemetry::StreamingConfig cfg;
  cfg.policy.sigma = std::numeric_limits<std::uint32_t>::max();
  cfg.window_s = window_s;
  cfg.num_files = dataset.corpus.files.size();
  cfg.trusted = false;
  telemetry::StreamingCollectionServer server(std::move(cfg),
                                              dataset.corpus.urls);

  std::vector<telemetry::EventWindow> windows;
  std::vector<telemetry::DeliveredReport> buffer;
  const double ingest_ms = bench::time_ms([&] {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(n, begin + chunk);
      buffer.clear();
      buffer.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        buffer.push_back(telemetry::DeliveredReport{
            events[i], static_cast<std::uint64_t>(i), events[i].time(), 0,
            false});
      server.ingest(buffer, windows);
    }
    server.finish(windows);
  });
  std::uint64_t accepted = 0;
  for (const auto& w : windows) accepted += w.events.size();

  // Incremental analytics: absorb every window, snapshot at the end, and
  // cross-check the snapshots against the batch passes over the same
  // corpus — the bit-identity the streaming layer guarantees.
  analysis::StreamingAnalytics analytics(dataset.corpus);
  std::uint64_t stream_sum = 0;
  const double analytics_ms = bench::time_ms([&] {
    for (const auto& w : windows) analytics.absorb(w);
    const auto monthly = analytics.monthly(annotated);
    const auto rates = analytics.signing(annotated);
    const auto prevalence = analytics.prevalence(annotated);
    stream_sum = monthly.overall.events + monthly.overall.files;
    stream_sum = stream_sum * 1'000'003 + rates.benign.files +
                 rates.malicious.files;
    stream_sum = stream_sum * 1'000'003 + prevalence.all.size();
  });
  std::uint64_t batch_sum = 0;
  {
    const auto monthly = analysis::monthly_summary(annotated);
    const auto rates = analysis::signing_rates(annotated);
    const auto prevalence = analysis::prevalence_distributions(annotated);
    batch_sum = monthly.overall.events + monthly.overall.files;
    batch_sum =
        batch_sum * 1'000'003 + rates.benign.files + rates.malicious.files;
    batch_sum = batch_sum * 1'000'003 + prevalence.all.size();
  }

  // Serving loop: window-by-window online labeling with freshness
  // accounting (report-to-labeled latency, exact percentiles).
  deploy::OnlineLabeler labeler(dataset, annotated, {});
  const double serve_ms = bench::time_ms([&] {
    for (const auto& w : windows) labeler.serve(w);
    labeler.finish();
  });
  const auto& fresh = labeler.freshness();

  const double ingest_rate =
      ingest_ms > 0 ? 1000.0 * static_cast<double>(n) / ingest_ms : 0.0;
  std::printf(
      "[longtail] streaming: %llu events, %zu windows of %llds — ingest "
      "%.1f ms (%.0f events/s), analytics %.1f ms, serve %.1f ms\n"
      "[longtail] freshness: %llu labeled / %llu pending, p50 %.0fs "
      "p90 %.0fs p99 %.0fs\n",
      static_cast<unsigned long long>(n), windows.size(),
      static_cast<long long>(window_s), ingest_ms, ingest_rate, analytics_ms,
      serve_ms, static_cast<unsigned long long>(fresh.files_labeled),
      static_cast<unsigned long long>(fresh.files_pending), fresh.p50_s,
      fresh.p90_s, fresh.p99_s);

  return bench::JsonObject()
      .field("window_s", static_cast<std::uint64_t>(window_s))
      .field("chunk", static_cast<std::uint64_t>(chunk))
      .field("windows", static_cast<std::uint64_t>(windows.size()))
      .field("events_in", static_cast<std::uint64_t>(n))
      .field("events_accepted", accepted)
      .field("conserved", server.conserved())
      .field("ingest_ms", ingest_ms)
      .field("ingest_events_per_sec", ingest_rate)
      .field("analytics_ms", analytics_ms)
      .field("snapshots_consistent", stream_sum == batch_sum)
      .field("serve_ms", serve_ms)
      .field("files_reported", fresh.files_reported)
      .field("files_labeled", fresh.files_labeled)
      .field("files_pending", fresh.files_pending)
      .field("freshness_p50_s", fresh.p50_s)
      .field("freshness_p90_s", fresh.p90_s)
      .field("freshness_p99_s", fresh.p99_s)
      .field("freshness_max_s", fresh.max_s)
      .field("freshness_mean_s", fresh.mean_s)
      .str();
}

void emit_trajectory(const std::string& fullscale_json) {
  const double scale = bench::bench_scale(0.05);
  // The canonical thread fan-out. The metrics snapshot is captured after
  // these passes (plus a fixed-thread cache roundtrip) and BEFORE the
  // machine-dependent "configured" pass below, so every counter in the
  // snapshot is a pure function of the workload — bench_compare gates
  // them exactly against the committed baseline regardless of the
  // machine's core count.
  const std::vector<unsigned> thread_counts = {1, 2, 8};
  const unsigned configured = util::ThreadPool::default_threads();

  std::printf("\n[longtail] perf trajectory at scale %.2f\n", scale);
  std::vector<TrajectoryRun> runs;
  auto run_pass = [&](unsigned t) {
    runs.push_back(run_trajectory_pass(scale, t));
    const auto& r = runs.back();
    std::printf(
        "  threads=%-2u total %8.1f ms (gen %7.1f, annotate %6.1f, "
        "analysis %6.1f, experiments %7.1f, eval %6.1f)  %9.0f events/s\n",
        r.threads, r.total_ms(), r.generate_ms, r.annotate_ms, r.analysis_ms,
        r.experiments_ms, r.eval_ms,
        1000.0 * static_cast<double>(r.events) / r.total_ms());
  };
  for (const unsigned t : thread_counts) run_pass(t);

  const TrajectoryRun serial = runs.front();

  // Binary corpus cache: save/load round-trip at the trajectory scale.
  // The load must beat regeneration (serial generate_ms) for the
  // LONGTAIL_CORPUS_CACHE path to be worth taking. Runs at a pinned
  // thread count: it is part of the fixed workload whose counters the
  // bench gate compares exactly.
  util::set_global_threads(2);
  const auto cache_file =
      (std::filesystem::temp_directory_path() / "longtail_perf_cache.bin")
          .string();
  auto cached = synth::generate_dataset(synth::paper_calibration(scale));
  const double save_ms =
      bench::time_ms([&] { synth::save_dataset_binary(cached, cache_file); });
  synth::Dataset reloaded;
  const double load_ms = bench::time_ms(
      [&] { reloaded = synth::load_dataset_binary(cache_file); });
  const bool cache_roundtrip =
      core::dataset_fingerprint(reloaded) == serial.fingerprint;
  // The zero-copy load of the same file: event columns stay mapped views,
  // so the fingerprint check doubles as a mapped-vs-owned equivalence
  // check at the trajectory scale.
  synth::Dataset remapped;
  const double load_mapped_ms = bench::time_ms(
      [&] { remapped = synth::load_dataset_mapped(cache_file); });
  // Drive one pass through the scan layer on the mapped columns so the
  // metrics snapshot records the zero-copy path
  // (corpus.scan.mapped_invocations — pinned by the CI schema check).
  const auto mapped_scan = fullscale_scan(remapped.corpus, nullptr);
  const bool mapped_roundtrip =
      core::dataset_fingerprint(remapped) == serial.fingerprint &&
      mapped_scan.executed == remapped.corpus.events.size();
  remapped = synth::Dataset{};  // release the mapping before unlink
  std::filesystem::remove(cache_file);
  std::printf(
      "[longtail] dataset cache: save %.1f ms, load %.1f ms "
      "(generate %.1f ms, %.1fx), mapped load %.1f ms, fingerprint %s/%s\n",
      save_ms, load_ms, serial.generate_ms,
      load_ms > 0 ? serial.generate_ms / load_ms : 0.0, load_mapped_ms,
      cache_roundtrip ? "preserved" : "MISMATCH",
      mapped_roundtrip ? "preserved" : "MISMATCH");

  // Streaming ingest -> incremental analytics -> serving loop, still at
  // the pinned thread count: the last leg of the fixed workload.
  const std::string streaming_json = run_streaming_section(cached);

  // End of the fixed workload: fold the profile summary in and capture
  // the snapshot now, before any machine-dependent pass can perturb it.
  // Rebuilding the pool first is a drain barrier — workers join only
  // after the queue empties, so every pool task has been accounted and
  // the task counters in the snapshot are exact.
  util::set_global_threads(2);
  util::profile::publish_metrics();
  const std::string metrics_snapshot = util::metrics::snapshot_json();

  // The environment's own thread setting, when it isn't one of the
  // canonical counts: measured for the wall-clock trajectory only.
  if (configured > 1 &&
      std::find(thread_counts.begin(), thread_counts.end(), configured) ==
          thread_counts.end())
    run_pass(configured);
  util::set_global_threads(util::ThreadPool::default_threads());

  bool deterministic = true;
  double best_total = serial.total_ms();
  double best_resolve = serial.resolve_events_ms;
  for (const auto& r : runs) {
    deterministic = deterministic && r.fingerprint == serial.fingerprint &&
                    r.analysis_checksum == serial.analysis_checksum &&
                    r.eval_checksum == serial.eval_checksum &&
                    r.events == serial.events;
    best_total = std::min(best_total, r.total_ms());
    if (r.resolve_events_ms > 0)
      best_resolve = std::min(best_resolve, r.resolve_events_ms);
  }
  const double resolve_events_speedup =
      best_resolve > 0 ? serial.resolve_events_ms / best_resolve : 0.0;

  std::string runs_json = "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    if (i > 0) runs_json += ", ";
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    runs_json += bench::JsonObject()
                     .field("threads", r.threads)
                     .field("load_path", std::string_view("generate"))
                     .field("generate_ms", r.generate_ms)
                     .field("resolve_events_ms", r.resolve_events_ms)
                     .field("annotate_ms", r.annotate_ms)
                     .field("analysis_ms", r.analysis_ms)
                     .field("experiments_ms", r.experiments_ms)
                     .field("eval_ms", r.eval_ms)
                     .field("total_ms", r.total_ms())
                     .field("events", r.events)
                     .field("events_per_sec",
                            1000.0 * static_cast<double>(r.events) /
                                r.total_ms())
                     .field("fingerprint", std::string_view(fp))
                     .str();
  }
  runs_json += "]";

  // Per-stage attribution: the metrics snapshot carries stage timing
  // histograms and event counters accumulated across all trajectory
  // passes (see docs/observability.md for the name scheme).
  auto json_builder =
      bench::JsonObject()
          .field("bench", std::string_view("pipeline"))
          .field("scale", scale)
          .field("mapped", bench::mmap_enabled())
          .field("hardware_concurrency",
                 static_cast<unsigned>(std::thread::hardware_concurrency()))
          .raw("run", bench::run_manifest_json(scale, serial.fingerprint))
          .raw("runs", runs_json)
          .field("serial_total_ms", serial.total_ms())
          .field("best_total_ms", best_total)
          .field("speedup", serial.total_ms() / best_total)
          .field("resolve_events_speedup", resolve_events_speedup)
          .field("deterministic", deterministic)
          .field("dataset_save_ms", save_ms)
          .field("dataset_load_ms", load_ms)
          .field("dataset_load_speedup",
                 load_ms > 0 ? serial.generate_ms / load_ms : 0.0)
          .field("dataset_cache_roundtrip", cache_roundtrip)
          .field("dataset_load_mapped_ms", load_mapped_ms)
          .field("dataset_load_mapped_speedup",
                 load_mapped_ms > 0 ? serial.generate_ms / load_mapped_ms
                                    : 0.0)
          .field("dataset_mapped_roundtrip", mapped_roundtrip);
  json_builder.raw("streaming", streaming_json);
  if (!fullscale_json.empty()) json_builder.raw("fullscale", fullscale_json);
  const auto json = json_builder.field("max_rss_mb", bench::max_rss_mb())
                        .raw("metrics", metrics_snapshot)
                        .str();
  bench::write_bench_json("BENCH_pipeline.json", json);
  std::printf("[longtail] speedup %.2fx (resolve_events %.2fx), "
              "deterministic across thread counts: %s\n",
              serial.total_ms() / best_total, resolve_events_speedup,
              deterministic ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  // Re-executed as a fullscale measurement child: do only the child's
  // load+scan+report, never the micro suite or the trajectory.
  if (std::getenv("LONGTAIL_FULLSCALE_CHILD") != nullptr)
    return run_fullscale_child();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* micro = std::getenv("LONGTAIL_BENCH_MICRO");
  if (micro == nullptr || std::string_view(micro) != "0")
    benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The trajectory always carries per-stage metrics and the profile
  // layer (CPU span attribution, pool busy accounting, RSS sampler);
  // LONGTAIL_TRACE=path additionally writes a Chrome trace of the same
  // passes at exit, with the sampler's counter series folded in.
  util::metrics::set_enabled(true);
  util::profile::set_enabled(true);
  util::profile::Sampler sampler;  // stops (and emits) before trace flush
  const std::string fullscale_json = run_fullscale_section(argv[0]);
  emit_trajectory(fullscale_json);
  sampler.stop();
  return 0;
}
