// google-benchmark microbenchmarks for the data pipeline: corpus
// generation, collection-server filtering, index construction, and
// labeling/annotation throughput.
#include <benchmark/benchmark.h>

#include "core/longtail.hpp"

namespace {

using namespace longtail;

void BM_GenerateDataset(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto ds = synth::generate_dataset(scale);
    events = ds.corpus.events.size();
    benchmark::DoNotOptimize(ds);
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_GenerateDataset)->Arg(2)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_CollectionFilter(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    telemetry::CollectionServer server(
        telemetry::CollectionPolicy{.sigma = 20, .whitelisted_domains = {}});
    auto accepted = server.filter(ds.corpus.events, ds.corpus.urls);
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_CollectionFilter)->Unit(benchmark::kMillisecond);

void BM_BuildIndex(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    telemetry::CorpusIndex index(ds.corpus);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_BuildIndex)->Unit(benchmark::kMillisecond);

void BM_Annotate(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
    benchmark::DoNotOptimize(annotated);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.files.size()) * state.iterations());
}
BENCHMARK(BM_Annotate)->Unit(benchmark::kMillisecond);

void BM_MonthlySummary(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  const auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
  for (auto _ : state) {
    auto summary = analysis::monthly_summary(annotated);
    benchmark::DoNotOptimize(summary);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_MonthlySummary)->Unit(benchmark::kMillisecond);

void BM_TransitionAnalysis(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  const auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
  for (auto _ : state) {
    auto curves = analysis::transition_analysis(annotated);
    benchmark::DoNotOptimize(curves);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_TransitionAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
