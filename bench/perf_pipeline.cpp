// google-benchmark microbenchmarks for the data pipeline: corpus
// generation, collection-server filtering, index construction, and
// labeling/annotation throughput.
//
// In addition to the micro suite, main() times the full pipeline
// end-to-end under LONGTAIL_THREADS = 1, 2, 8 (plus the environment's
// setting) and writes the results to BENCH_pipeline.json so the perf
// trajectory — wall time, events/sec, parallel speedup, and the
// determinism fingerprint — is tracked from commit to commit.
// LONGTAIL_BENCH_MICRO=0 skips the micro suite (CI uses this to get the
// trajectory quickly); LONGTAIL_BENCH_JSON overrides the output path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/longtail.hpp"

namespace {

using namespace longtail;

void BM_GenerateDataset(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto ds = synth::generate_dataset(scale);
    events = ds.corpus.events.size();
    benchmark::DoNotOptimize(ds);
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_GenerateDataset)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_CollectionFilter(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    telemetry::CollectionServer server(
        telemetry::CollectionPolicy{.sigma = 20, .whitelisted_domains = {}});
    auto accepted = server.filter(ds.corpus.events, ds.corpus.urls);
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_CollectionFilter)->Unit(benchmark::kMillisecond);

void BM_BuildIndex(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    telemetry::CorpusIndex index(ds.corpus);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_BuildIndex)->Unit(benchmark::kMillisecond);

void BM_Annotate(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  for (auto _ : state) {
    auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
    benchmark::DoNotOptimize(annotated);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.files.size()) * state.iterations());
}
BENCHMARK(BM_Annotate)->Unit(benchmark::kMillisecond);

void BM_MonthlySummary(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  const auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
  for (auto _ : state) {
    auto summary = analysis::monthly_summary(annotated);
    benchmark::DoNotOptimize(summary);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_MonthlySummary)->Unit(benchmark::kMillisecond);

void BM_TransitionAnalysis(benchmark::State& state) {
  const auto ds = synth::generate_dataset(0.05);
  const auto annotated = analysis::annotate(ds.corpus, ds.whitelist, ds.vt);
  for (auto _ : state) {
    auto curves = analysis::transition_analysis(annotated);
    benchmark::DoNotOptimize(curves);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ds.corpus.events.size()) * state.iterations());
}
BENCHMARK(BM_TransitionAnalysis)->Unit(benchmark::kMillisecond);

// One end-to-end pipeline pass; returns per-stage wall times and enough
// output to assert thread-count independence.
struct TrajectoryRun {
  unsigned threads = 0;
  double generate_ms = 0;
  double resolve_events_ms = 0;  // event-resolution slice of generate_ms
  double annotate_ms = 0;
  double analysis_ms = 0;
  double experiments_ms = 0;
  double eval_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t analysis_checksum = 0;
  std::uint64_t eval_checksum = 0;

  [[nodiscard]] double total_ms() const {
    return generate_ms + annotate_ms + analysis_ms + experiments_ms + eval_ms;
  }
};

// The measurement-study bundle: the §IV/§V passes that now run on the
// shared corpus-scan layer. The checksum pins their outputs across thread
// counts.
std::uint64_t run_analysis_bundle(const analysis::AnnotatedCorpus& a) {
  std::uint64_t sum = 0;
  const auto monthly = analysis::monthly_summary(a);
  sum = sum * 1'000'003 + monthly.overall.events + monthly.overall.files;
  const auto rates = analysis::signing_rates(a);
  sum = sum * 1'000'003 + rates.benign.files + rates.malicious.files;
  const auto prevalence = analysis::prevalence_distributions(a);
  sum = sum * 1'000'003 + prevalence.all.size();
  const auto popularity = analysis::domain_popularity(a);
  sum = sum * 1'000'003 + popularity.overall.size();
  const auto transitions = analysis::transition_analysis(a);
  sum = sum * 1'000'003 + transitions.adware.transitioned +
        transitions.dropper.initiator_machines;
  const auto behavior = analysis::malicious_process_behavior(a);
  sum = sum * 1'000'003 + behavior.overall.machines;
  return sum;
}

TrajectoryRun run_trajectory_pass(double scale, unsigned threads) {
  util::set_global_threads(threads);
  TrajectoryRun run;
  run.threads = threads;

  synth::Dataset dataset;
  // The resolve_events slice comes from the stage histogram (metrics are
  // enabled for the trajectory): delta around the generate call isolates
  // this pass from the accumulated snapshot.
  const double resolve_before =
      util::metrics::histogram("synth.resolve_events_ms").sum_ms();
  run.generate_ms = bench::time_ms([&] {
    dataset = synth::generate_dataset(synth::paper_calibration(scale));
  });
  run.resolve_events_ms =
      util::metrics::histogram("synth.resolve_events_ms").sum_ms() -
      resolve_before;
  run.events = dataset.corpus.events.size();
  run.fingerprint = core::dataset_fingerprint(dataset);

  std::unique_ptr<core::LongtailPipeline> pipeline;
  run.annotate_ms = bench::time_ms([&] {
    pipeline =
        std::make_unique<core::LongtailPipeline>(std::move(dataset));
  });

  run.analysis_ms = bench::time_ms([&] {
    run.analysis_checksum = run_analysis_bundle(pipeline->annotated());
  });

  // The §VI fan-out: one rule experiment per consecutive month window.
  std::vector<std::pair<model::Month, model::Month>> windows;
  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m)
    windows.emplace_back(static_cast<model::Month>(m),
                         static_cast<model::Month>(m + 1));
  std::vector<core::RuleExperiment> experiments;
  run.experiments_ms = bench::time_ms(
      [&] { experiments = pipeline->run_rule_experiments(windows); });

  const std::vector<double> taus = {0.0, 0.001};
  run.eval_ms = bench::time_ms([&] {
    for (const auto& exp : experiments) {
      const auto evals = core::LongtailPipeline::evaluate_taus(exp, taus);
      for (const auto& eval : evals) {
        run.eval_checksum = run.eval_checksum * 1'000'003 +
                            eval.eval.true_positives * 31 +
                            eval.eval.false_positives * 7 +
                            eval.expansion.labeled_malicious;
      }
    }
  });
  return run;
}

void emit_trajectory() {
  const double scale = bench::bench_scale(0.05);
  std::vector<unsigned> thread_counts = {1, 2, 8};
  const unsigned configured = util::ThreadPool::default_threads();
  if (configured > 1 &&
      std::find(thread_counts.begin(), thread_counts.end(), configured) ==
          thread_counts.end())
    thread_counts.push_back(configured);

  std::printf("\n[longtail] perf trajectory at scale %.2f\n", scale);
  std::vector<TrajectoryRun> runs;
  for (const unsigned t : thread_counts) {
    runs.push_back(run_trajectory_pass(scale, t));
    const auto& r = runs.back();
    std::printf(
        "  threads=%-2u total %8.1f ms (gen %7.1f, annotate %6.1f, "
        "analysis %6.1f, experiments %7.1f, eval %6.1f)  %9.0f events/s\n",
        r.threads, r.total_ms(), r.generate_ms, r.annotate_ms, r.analysis_ms,
        r.experiments_ms, r.eval_ms,
        1000.0 * static_cast<double>(r.events) / r.total_ms());
  }
  util::set_global_threads(util::ThreadPool::default_threads());

  const auto& serial = runs.front();
  bool deterministic = true;
  double best_total = serial.total_ms();
  double best_resolve = serial.resolve_events_ms;
  for (const auto& r : runs) {
    deterministic = deterministic && r.fingerprint == serial.fingerprint &&
                    r.analysis_checksum == serial.analysis_checksum &&
                    r.eval_checksum == serial.eval_checksum &&
                    r.events == serial.events;
    best_total = std::min(best_total, r.total_ms());
    if (r.resolve_events_ms > 0)
      best_resolve = std::min(best_resolve, r.resolve_events_ms);
  }
  const double resolve_events_speedup =
      best_resolve > 0 ? serial.resolve_events_ms / best_resolve : 0.0;

  std::string runs_json = "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    if (i > 0) runs_json += ", ";
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    runs_json += bench::JsonObject()
                     .field("threads", r.threads)
                     .field("generate_ms", r.generate_ms)
                     .field("resolve_events_ms", r.resolve_events_ms)
                     .field("annotate_ms", r.annotate_ms)
                     .field("analysis_ms", r.analysis_ms)
                     .field("experiments_ms", r.experiments_ms)
                     .field("eval_ms", r.eval_ms)
                     .field("total_ms", r.total_ms())
                     .field("events", r.events)
                     .field("events_per_sec",
                            1000.0 * static_cast<double>(r.events) /
                                r.total_ms())
                     .field("fingerprint", std::string_view(fp))
                     .str();
  }
  runs_json += "]";

  // Binary corpus cache: save/load round-trip at the trajectory scale.
  // The load must beat regeneration (serial generate_ms) for the
  // LONGTAIL_CORPUS_CACHE path to be worth taking.
  const auto cache_file =
      (std::filesystem::temp_directory_path() / "longtail_perf_cache.bin")
          .string();
  auto cached = synth::generate_dataset(synth::paper_calibration(scale));
  const double save_ms =
      bench::time_ms([&] { synth::save_dataset_binary(cached, cache_file); });
  synth::Dataset reloaded;
  const double load_ms = bench::time_ms(
      [&] { reloaded = synth::load_dataset_binary(cache_file); });
  const bool cache_roundtrip =
      core::dataset_fingerprint(reloaded) == serial.fingerprint;
  std::filesystem::remove(cache_file);
  std::printf(
      "[longtail] dataset cache: save %.1f ms, load %.1f ms "
      "(generate %.1f ms, %.1fx), fingerprint %s\n",
      save_ms, load_ms, serial.generate_ms,
      load_ms > 0 ? serial.generate_ms / load_ms : 0.0,
      cache_roundtrip ? "preserved" : "MISMATCH");

  // Per-stage attribution: the metrics snapshot carries stage timing
  // histograms and event counters accumulated across all trajectory
  // passes (see docs/observability.md for the name scheme).
  const auto json =
      bench::JsonObject()
          .field("bench", std::string_view("pipeline"))
          .field("scale", scale)
          .field("hardware_concurrency",
                 static_cast<unsigned>(std::thread::hardware_concurrency()))
          .raw("runs", runs_json)
          .field("serial_total_ms", serial.total_ms())
          .field("best_total_ms", best_total)
          .field("speedup", serial.total_ms() / best_total)
          .field("resolve_events_speedup", resolve_events_speedup)
          .field("deterministic", deterministic)
          .field("dataset_save_ms", save_ms)
          .field("dataset_load_ms", load_ms)
          .field("dataset_load_speedup",
                 load_ms > 0 ? serial.generate_ms / load_ms : 0.0)
          .field("dataset_cache_roundtrip", cache_roundtrip)
          .raw("metrics", util::metrics::snapshot_json())
          .str();
  bench::write_bench_json("BENCH_pipeline.json", json);
  std::printf("[longtail] speedup %.2fx (resolve_events %.2fx), "
              "deterministic across thread counts: %s\n",
              serial.total_ms() / best_total, resolve_events_speedup,
              deterministic ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* micro = std::getenv("LONGTAIL_BENCH_MICRO");
  if (micro == nullptr || std::string_view(micro) != "0")
    benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The trajectory always carries per-stage metrics; LONGTAIL_TRACE=path
  // additionally writes a Chrome trace of the same passes at exit.
  util::metrics::set_enabled(true);
  emit_trajectory();
  return 0;
}
