// Shared support for the table/figure reproduction binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation and prints the measured values next to the paper's reference
// values. The corpus scale defaults to 1/10 of the paper's dataset and can
// be overridden with the LONGTAIL_SCALE environment variable (e.g.
// LONGTAIL_SCALE=0.25 ./table16_rules).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/longtail.hpp"
#include "util/table.hpp"

namespace longtail::bench {

inline double bench_scale(double fallback = 0.10) {
  if (const char* env = std::getenv("LONGTAIL_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

inline core::LongtailPipeline make_pipeline(double default_scale = 0.10) {
  const double scale = bench_scale(default_scale);
  std::printf("[longtail] generating corpus at scale %.2f of the paper's "
              "dataset (LONGTAIL_SCALE to override)\n\n",
              scale);
  return core::LongtailPipeline::generate(scale);
}

inline void print_header(const std::string& title, const std::string& note) {
  std::fputs(util::banner(title).c_str(), stdout);
  if (!note.empty()) std::printf("%s\n\n", note.c_str());
}

// "measured (paper: reference)" cell helper.
inline std::string vs_paper(const std::string& measured,
                            const std::string& paper) {
  return measured + " (paper " + paper + ")";
}

}  // namespace longtail::bench
