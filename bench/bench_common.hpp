// Shared support for the table/figure reproduction binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation and prints the measured values next to the paper's reference
// values. The corpus scale defaults to 1/10 of the paper's dataset and can
// be overridden with the LONGTAIL_SCALE environment variable (e.g.
// LONGTAIL_SCALE=0.25 ./table16_rules).
// Thread count comes from LONGTAIL_THREADS (see util/thread_pool.hpp);
// the perf_* binaries additionally emit machine-readable timing JSON
// (BENCH_pipeline.json / BENCH_rules.json) so the performance trajectory
// is tracked across commits.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include <sys/resource.h>
#include <unistd.h>

extern "C" char** environ;  // walked for the LONGTAIL_* run manifest

#include "core/longtail.hpp"
#include "synth/dataset_io.hpp"
#include "telemetry/faults.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace longtail::bench {

inline double bench_scale(double fallback = 0.10) {
  // strtod with end-pointer validation: atof returns 0.0 on garbage, which
  // silently fell back. Reject trailing junk ("0.1x") and non-positive or
  // non-finite values, and say so instead of pretending the knob worked.
  if (const char* env = std::getenv("LONGTAIL_SCALE");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0' && std::isfinite(v) && v > 0.0) return v;
    std::fprintf(stderr,
                 "[longtail] warning: invalid LONGTAIL_SCALE='%s' "
                 "(want a positive number); using default %.2f\n",
                 env, fallback);
  }
  return fallback;
}

// Zero-copy (mmap) loads are the default for cache hits; LONGTAIL_MMAP=0
// falls back to the fully-owned loader (e.g. to compare the two paths, or
// on filesystems where mapping misbehaves).
inline bool mmap_enabled() {
  const char* env = std::getenv("LONGTAIL_MMAP");
  return env == nullptr || std::string_view(env) != "0";
}

// How the last make_dataset() call obtained its dataset: "generate",
// "cache_mapped", or "cache_owned". The perf trajectory records it per
// run so a bench JSON says which load path it measured.
inline std::string& last_load_path() {
  static std::string path = "generate";
  return path;
}

// Peak resident set of this process so far, in MiB. The one shared
// definition lives in util/profile (the sampler and the fullscale
// children use the same one); this alias keeps bench call sites short.
inline double max_rss_mb() { return util::profile::peak_rss_mb(); }

// Cache file name for the binary dataset at this scale, fault profile,
// and scenario. The file format version is part of the name so a codec
// bump never reads stale caches; the fault and scenario cache keys keep
// perturbed datasets from shadowing the clean one (both empty for the
// zero profiles, so unperturbed paths are unchanged). The scenario spec is
// *not* serialized inside the LTDS file — the key in the file name is
// what pins a cache entry to its scenario, so a cached dataset is never
// reused across scenario specs.
inline std::string corpus_cache_path(
    const std::string& dir, double scale,
    const telemetry::FaultProfile& faults = {},
    const synth::ScenarioProfile& scenario = {}) {
  const std::string fkey = faults.cache_key();
  const std::string skey = scenario.cache_key();
  char name[128];
  std::snprintf(name, sizeof(name), "longtail_ds_v%u_s%g%s%s%s%s.bin",
                synth::kDatasetBinaryVersion, scale, fkey.empty() ? "" : "_",
                fkey.c_str(), skey.empty() ? "" : "_", skey.c_str());
  return (std::filesystem::path(dir) / name).string();
}

// With LONGTAIL_CORPUS_CACHE=<dir> set, loads the binary dataset for this
// profile from the cache (or generates it once and saves it). Cache status
// goes to stderr so table stdout stays byte-identical either way.
inline synth::Dataset make_dataset(const synth::CalibrationProfile& profile) {
  last_load_path() = "generate";
  const char* dir = std::getenv("LONGTAIL_CORPUS_CACHE");
  if (dir == nullptr || *dir == '\0') return synth::generate_dataset(profile);

  const std::string path =
      corpus_cache_path(dir, profile.scale, profile.faults, profile.scenario);
  if (std::filesystem::exists(path)) {
    try {
      // A hit maps the file zero-copy by default (the event columns stay
      // views into the mapping); LONGTAIL_MMAP=0 selects the owned loader.
      const bool mapped = mmap_enabled();
      auto ds = mapped ? synth::load_dataset_mapped(path)
                       : synth::load_dataset_binary(path);
      std::fprintf(stderr, "[longtail] corpus cache hit (%s): %s\n",
                   mapped ? "mapped" : "owned", path.c_str());
      last_load_path() = mapped ? "cache_mapped" : "cache_owned";
      return ds;
    } catch (const std::exception& ex) {
      std::fprintf(stderr,
                   "[longtail] corpus cache unreadable (%s), regenerating: "
                   "%s\n",
                   ex.what(), path.c_str());
    }
  }
  std::fprintf(stderr, "[longtail] corpus cache miss: %s\n", path.c_str());
  auto ds = synth::generate_dataset(profile);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // Atomic publish: write to a process-private temp name in the same
  // directory, then rename onto the final path. A bench run killed
  // mid-save can leave a stray .tmp file but never a truncated cache
  // entry; concurrent writers each publish a complete image and the last
  // rename wins. The unreadable→regenerate fallback above stays as the
  // last line of defense.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned>(::getpid()));
  try {
    synth::save_dataset_binary(ds, tmp);
    std::filesystem::rename(tmp, path);
    std::fprintf(stderr, "[longtail] corpus cache saved: %s\n", path.c_str());
  } catch (const std::exception& ex) {
    std::filesystem::remove(tmp, ec);
    std::fprintf(stderr, "[longtail] corpus cache save failed: %s\n",
                 ex.what());
  }
  return ds;
}

inline synth::Dataset make_dataset(double scale) {
  auto profile = synth::paper_calibration(scale);
  profile.faults = telemetry::faults_from_env();
  profile.scenario = synth::scenario_from_env();
  return make_dataset(profile);
}

inline core::LongtailPipeline make_pipeline(double default_scale = 0.10) {
  const double scale = bench_scale(default_scale);
  std::printf("[longtail] generating corpus at scale %.2f of the paper's "
              "dataset (LONGTAIL_SCALE to override)\n\n",
              scale);
  auto profile = synth::paper_calibration(scale);
  profile.faults = telemetry::faults_from_env();
  profile.scenario = synth::scenario_from_env();
  if (profile.faults.any())
    std::fprintf(stderr, "[longtail] fault profile active: %s\n",
                 profile.faults.spec().c_str());
  if (profile.scenario.active())
    std::fprintf(stderr, "[longtail] scenario active: %s\n",
                 profile.scenario.spec().c_str());
  return core::LongtailPipeline(make_dataset(profile));
}

inline void print_header(const std::string& title, const std::string& note) {
  std::fputs(util::banner(title).c_str(), stdout);
  if (!note.empty()) std::printf("%s\n\n", note.c_str());
}

// "measured (paper: reference)" cell helper.
inline std::string vs_paper(const std::string& measured,
                            const std::string& paper) {
  return measured + " (paper " + paper + ")";
}

// Wall-clock milliseconds of fn().
template <typename Fn>
double time_ms(Fn&& fn) {
  const auto begin = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

// Minimal append-only JSON object builder for the BENCH_*.json files.
// Emits only what the trajectory needs: numbers, strings, booleans, and
// pre-rendered nested values via raw().
class JsonObject {
 public:
  JsonObject& field(std::string_view key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& field(std::string_view key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(std::string_view key, unsigned v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(std::string_view key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonObject& field(std::string_view key, std::string_view v) {
    std::string quoted = "\"";
    quoted.append(v);
    quoted += '"';
    return raw(key, quoted);
  }
  JsonObject& raw(std::string_view key, std::string_view json) {
    if (!first_) out_ += ", ";
    first_ = false;
    out_ += '"';
    out_.append(key);
    out_ += "\": ";
    out_.append(json);
    return *this;
  }
  [[nodiscard]] std::string str() const { return out_ + "}"; }

 private:
  std::string out_ = "{";
  bool first_ = true;
};

// Run-provenance manifest: everything needed to reproduce (or refuse to
// compare) a bench result. Embedded as the "run" object in every
// BENCH_*.json so a number can always be traced back to the exact seed,
// scale, thread count, environment knobs, compiler, and dataset identity
// that produced it. `fingerprint` is core::dataset_fingerprint of the
// dataset the bench ran on (0 when the binary never builds one).
inline std::string run_manifest_json(double scale,
                                     std::uint64_t fingerprint = 0) {
  const auto profile = synth::paper_calibration(scale);
  const auto faults = telemetry::faults_from_env();
  const auto scenario = synth::scenario_from_env();

  // Every LONGTAIL_* environment knob, sorted, so two manifests diff
  // cleanly. Values are self-produced strings but escape them anyway.
  std::map<std::string, std::string> knobs;
  for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
    const std::string_view entry = *env;
    if (entry.rfind("LONGTAIL_", 0) != 0) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    knobs.emplace(entry.substr(0, eq), entry.substr(eq + 1));
  }
  std::string env_json = "{";
  bool first = true;
  for (const auto& [key, value] : knobs) {
    if (!first) env_json += ", ";
    first = false;
    env_json += "\"" + key + "\": \"";
    for (const char c : value) {
      if (c == '"' || c == '\\') env_json += '\\';
      env_json += c;
    }
    env_json += "\"";
  }
  env_json += "}";

  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%llx",
                static_cast<unsigned long long>(fingerprint));
#ifndef LONGTAIL_BUILD_TYPE
#define LONGTAIL_BUILD_TYPE "unknown"
#endif
  JsonObject run;
  run.field("seed", profile.seed)
      .field("scale", scale)
      .field("threads", util::effective_threads())
      .field("hardware_concurrency",
             static_cast<unsigned>(std::thread::hardware_concurrency()))
      .raw("env", env_json)
      .field("compiler", std::string_view(__VERSION__))
      .field("build_type", std::string_view(LONGTAIL_BUILD_TYPE))
      .field("dataset_fingerprint", std::string_view(fp))
      .field("faults",
             faults.any() ? std::string_view(faults.spec()) : "none")
      .field("scenario",
             scenario.active() ? std::string_view(scenario.spec()) : "none");
  return run.str();
}

// Writes `content` to `default_path` (overridable via the LONGTAIL_BENCH_JSON
// environment variable; set it to an empty string to suppress the file).
inline void write_bench_json(const std::string& default_path,
                             const std::string& content) {
  std::string path = default_path;
  if (const char* env = std::getenv("LONGTAIL_BENCH_JSON")) path = env;
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(content.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("[longtail] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[longtail] cannot write %s\n", path.c_str());
  }
}

}  // namespace longtail::bench
