// Extension experiment: sensitivity to the unknowable assumption.
//
// The hidden nature of unknown files cannot be known (that is the paper's
// point); DESIGN.md fixes their benign fraction at 40%. This sweep
// regenerates the corpus under different assumptions and measures which
// reproduced results move: the classifier's TP/FP (computed on labeled
// data only) must be invariant, while the *composition* of expanded labels
// tracks the assumption.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: sensitivity to the hidden nature of unknown files",
      "TP/FP are measured on labeled data and should not move; the "
      "expansion composition may.");

  const double scale = bench::bench_scale(0.05);
  util::TextTable table({"benign share of unknowns", "TP", "FP",
                         "unknowns matched", "-> mal", "-> ben",
                         "mal share of matched"});
  for (const double benign_fraction : {0.2, 0.4, 0.6}) {
    auto profile = synth::paper_calibration(scale);
    profile.unknown_nature.benign_fraction = benign_fraction;
    const auto pipeline = core::LongtailPipeline(profile);
    const auto exp = pipeline.run_rule_experiment(model::Month::kMarch,
                                                  model::Month::kApril);
    const auto eval = core::LongtailPipeline::evaluate_tau(exp, 0.001);
    const auto matched = eval.expansion.matched();
    table.add_row(
        {util::pct(100 * benign_fraction, 0),
         util::pct(eval.eval.tp_rate(), 2), util::pct(eval.eval.fp_rate(), 2),
         util::pct(eval.expansion.matched_pct()),
         util::with_commas(eval.expansion.labeled_malicious),
         util::with_commas(eval.expansion.labeled_benign),
         util::pct(util::percent(eval.expansion.labeled_malicious,
                                 matched))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe paper's accuracy claims (Table XVII) do not depend on what the "
      "unknowns really are;\nonly the composition of the newly assigned "
      "labels does — which is exactly what an expanded\nevaluation corpus "
      "is supposed to reflect.\n");
  return 0;
}
