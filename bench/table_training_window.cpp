// Extension experiment: training-window size. The paper uses one-month
// windows; this sweep trains on 1, 2, and 3 months (ending in May) and
// tests on June, measuring whether more history buys coverage or costs
// precision.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: training-window size (test month fixed to June)",
      "Longer windows add signers (coverage) but also stale ones.");

  const auto pipeline = bench::make_pipeline();
  const auto& a = pipeline.annotated();

  util::TextTable table({"Train window", "# train", "Rules", "Selected",
                         "TP", "FP", "Unknowns matched"});
  features::FeatureSpace space;
  // Build the June test/unknown sets once (exclude files first seen in the
  // longest window to keep the comparison fair).
  const auto longest = features::build_window_dataset(
      a, space, model::Month::kMarch, model::Month::kJune);

  for (int months = 1; months <= 3; ++months) {
    const auto begin_month =
        static_cast<model::Month>(static_cast<int>(model::Month::kMay) -
                                  (months - 1));
    const auto train = features::labeled_instances(
        a, space, model::month_begin(begin_month),
        model::month_end(model::Month::kMay));
    const rules::PartLearner learner;
    const auto rules_all = learner.learn(train);
    auto selected = rules::select_rules(rules_all, 0.001);
    const auto n_selected = selected.size();
    const rules::RuleClassifier classifier(std::move(selected));
    const auto eval = rules::evaluate(classifier, longest.test);
    const auto expansion =
        rules::expand_unknowns(classifier, longest.unknowns);
    table.add_row({std::string(model::month_abbrev(begin_month)) + "-May",
                   util::with_commas(train.size()),
                   util::with_commas(rules_all.size()),
                   util::with_commas(n_selected),
                   util::pct(eval.tp_rate(), 2), util::pct(eval.fp_rate(), 2),
                   util::pct(expansion.matched_pct())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
