// Reproduces Table XI: download behaviour of benign browser processes.
// Paper infection rates: Chrome 31.92% (highest), Opera 27.83%, Firefox
// 26.00%, Safari 18.56%, IE 18.09% (lowest) — "IE could be considered the
// safest browser" by this metric.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table XI: download behaviour per browser",
                      "Paper infected %: FF 26.00, Chrome 31.92, Opera "
                      "27.83, Safari 18.56, IE 18.09.");

  constexpr double kPaperInfected[] = {26.00, 31.92, 27.83, 18.56, 18.09};

  const auto pipeline = bench::make_pipeline();
  const auto rows = analysis::browser_behavior(pipeline.annotated());

  util::TextTable table({"Browser", "Processes", "Machines", "Unknown",
                         "Benign", "Malicious", "Infected", "Paper infected"});
  for (std::size_t b = 0; b < model::kNumBrowserKinds; ++b) {
    const auto& r = rows[b];
    table.add_row({std::string(to_string(static_cast<model::BrowserKind>(b))),
                   util::with_commas(r.processes),
                   util::with_commas(r.machines),
                   util::with_commas(r.unknown_files),
                   util::with_commas(r.benign_files),
                   util::with_commas(r.malicious_files),
                   util::pct(r.infected_machines_pct),
                   util::pct(kPaperInfected[b])});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
