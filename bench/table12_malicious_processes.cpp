// Reproduces Table XII: download behaviour of malicious processes grouped
// by their behaviour type. Paper shapes: each type mostly downloads its
// own kind (ransomware->ransomware 80.95%, bot->bot 64.72%, banker->banker
// 76.00%); adware/PUP processes also pull in trojans and droppers.
#include "bench_common.hpp"

namespace {

std::string type_mix(
    const std::array<double, longtail::model::kNumMalwareTypes>& pct) {
  using longtail::model::MalwareType;
  std::string out;
  for (std::size_t t = 0; t < longtail::model::kNumMalwareTypes; ++t) {
    if (pct[t] < 0.005) continue;
    if (!out.empty()) out += ", ";
    out += std::string(to_string(static_cast<MalwareType>(t))) + "=" +
           longtail::util::pct(pct[t]);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  using namespace longtail;
  bench::print_header(
      "Table XII: download behaviour of malicious process types",
      "Paper same-type shares: trojan 51.90%, dropper 39.10%, ransomware "
      "80.95%, bot 64.72%, worm 72.46%, banker 76.00%, fakeav 56.60%, "
      "adware 66.24%.");

  const auto pipeline = bench::make_pipeline();
  const auto behavior = analysis::malicious_process_behavior(
      pipeline.annotated());

  util::TextTable table({"Proc type", "Processes", "Machines", "Unknown",
                         "Benign", "Malware", "Same-type %"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    const auto& r = behavior.per_type[t];
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   util::with_commas(r.processes),
                   util::with_commas(r.machines),
                   util::with_commas(r.unknown_files),
                   util::with_commas(r.benign_files),
                   util::with_commas(r.malicious_files),
                   util::pct(r.type_pct[t])});
  }
  const auto& o = behavior.overall;
  table.add_row({"Overall", util::with_commas(o.processes),
                 util::with_commas(o.machines),
                 util::with_commas(o.unknown_files),
                 util::with_commas(o.benign_files),
                 util::with_commas(o.malicious_files), "-"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nFull type mix of downloaded malicious files:\n");
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    std::printf(
        "  %-11s %s\n",
        std::string(to_string(static_cast<model::MalwareType>(t))).c_str(),
        type_mix(behavior.per_type[t].type_pct).c_str());
  }
  return 0;
}
