// Reproduces Fig. 3: distribution of the Alexa ranks of domains hosting
// benign vs malicious files. The paper's reading: malicious files
// aggressively use higher-ranked (more popular) domains — file-hosting
// services — for distribution.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Fig. 3: Alexa ranks of domains hosting benign vs malicious files",
      "CDF over ranked domains; lower rank = more popular.");

  const auto pipeline = bench::make_pipeline();
  const auto benign = analysis::alexa_of_domains_hosting(
      pipeline.annotated(), model::Verdict::kBenign);
  const auto malicious = analysis::alexa_of_domains_hosting(
      pipeline.annotated(), model::Verdict::kMalicious);

  util::TextTable table({"Alexa rank <=", "Benign-hosting CDF",
                         "Malicious-hosting CDF"});
  for (const double r : {100.0, 1'000.0, 10'000.0, 100'000.0, 500'000.0,
                         1'000'000.0}) {
    table.add_row({util::with_commas(static_cast<std::uint64_t>(r)),
                   util::pct(100 * benign.ranks.at(r)),
                   util::pct(100 * malicious.ranks.at(r))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nDomains hosting benign files:    %s (%s unranked)\n"
      "Domains hosting malicious files: %s (%s unranked)\n",
      util::with_commas(benign.domains).c_str(),
      util::pct(100 * benign.unranked_fraction).c_str(),
      util::with_commas(malicious.domains).c_str(),
      util::pct(100 * malicious.unranked_fraction).c_str());
  return 0;
}
