// google-benchmark microbenchmarks and ablations for the rule subsystem:
// PART induction, tau selection, classification throughput, and the
// DESIGN.md ablations (conflict policy, feature dropping).
//
// main() also times rule matching over the test + unknown datasets under
// LONGTAIL_THREADS = 1, 2, 8 and writes BENCH_rules.json (same scheme as
// perf_pipeline: LONGTAIL_BENCH_MICRO=0 skips the micro suite,
// LONGTAIL_BENCH_JSON overrides the output path).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/longtail.hpp"
#include "rules/tree.hpp"

namespace {

using namespace longtail;

struct RuleFixture {
  core::LongtailPipeline pipeline = core::LongtailPipeline::generate(0.05);
  core::RuleExperiment exp = pipeline.run_rule_experiment(
      model::Month::kMarch, model::Month::kApril);
};

RuleFixture& fixture() {
  static RuleFixture f;
  return f;
}

void BM_PartLearn(benchmark::State& state) {
  auto& f = fixture();
  const rules::PartLearner learner;
  std::size_t n_rules = 0;
  for (auto _ : state) {
    auto rules = learner.learn(f.exp.data.train);
    n_rules = rules.size();
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules"] = static_cast<double>(n_rules);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(f.exp.data.train.size()) * state.iterations());
}
BENCHMARK(BM_PartLearn)->Unit(benchmark::kMillisecond);

void BM_TauSelection(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto selected = rules::select_rules(f.exp.all_rules, 0.001);
    benchmark::DoNotOptimize(selected);
  }
}
BENCHMARK(BM_TauSelection);

void BM_ClassifyUnknowns(benchmark::State& state) {
  auto& f = fixture();
  const rules::RuleClassifier classifier(
      rules::select_rules(f.exp.all_rules, 0.001));
  for (auto _ : state) {
    auto result = rules::expand_unknowns(classifier, f.exp.data.unknowns);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(f.exp.data.unknowns.size()) *
      state.iterations());
}
BENCHMARK(BM_ClassifyUnknowns)->Unit(benchmark::kMillisecond);

// --- Ablation: conflict policy (DESIGN.md) ---------------------------------
// The paper rejects conflicting matches; the ablations measure accuracy
// under majority vote and PART's native decision-list semantics.
void BM_Ablation_ConflictPolicy(benchmark::State& state) {
  auto& f = fixture();
  const auto policy = static_cast<rules::ConflictPolicy>(state.range(0));
  auto selected = rules::select_rules(f.exp.all_rules, 0.001);
  const rules::RuleClassifier classifier(std::move(selected), policy);
  rules::EvalResult eval;
  for (auto _ : state) {
    eval = rules::evaluate(classifier, f.exp.data.test);
    benchmark::DoNotOptimize(eval);
  }
  state.counters["tp_pct"] = eval.tp_rate();
  state.counters["fp_pct"] = eval.fp_rate();
  state.counters["rejected"] = static_cast<double>(eval.rejected);
}
BENCHMARK(BM_Ablation_ConflictPolicy)
    ->Arg(0)   // kReject (the paper)
    ->Arg(1)   // kMajorityVote
    ->Arg(2)   // kDecisionList
    ->Unit(benchmark::kMicrosecond);

// --- Ablation: tau sweep ---------------------------------------------------
// The paper limits itself to tau <= 0.1%, predicting deterioration beyond;
// this sweep measures it.
void BM_Ablation_TauSweep(benchmark::State& state) {
  auto& f = fixture();
  const double tau = static_cast<double>(state.range(0)) / 10'000.0;
  auto selected = rules::select_rules(f.exp.all_rules, tau);
  const rules::RuleClassifier classifier(std::move(selected));
  rules::EvalResult eval;
  rules::ExpansionResult expansion;
  for (auto _ : state) {
    eval = rules::evaluate(classifier, f.exp.data.test);
    expansion = rules::expand_unknowns(classifier, f.exp.data.unknowns);
    benchmark::DoNotOptimize(eval);
  }
  state.counters["tp_pct"] = eval.tp_rate();
  state.counters["fp_pct"] = eval.fp_rate();
  state.counters["unknown_matched_pct"] = expansion.matched_pct();
}
BENCHMARK(BM_Ablation_TauSweep)
    ->Arg(0)    // tau = 0.0%
    ->Arg(10)   // tau = 0.1%
    ->Arg(50)   // tau = 0.5%
    ->Arg(100)  // tau = 1.0%
    ->Unit(benchmark::kMicrosecond);

// --- Ablation: drop the signer feature -------------------------------------
// The signer feature appears in ~75% of the paper's rules; removing it
// should collapse coverage.
void BM_Ablation_DropSigner(benchmark::State& state) {
  auto& f = fixture();
  // Re-learn on instances whose signer features are collapsed to one
  // value, which is equivalent to removing the feature.
  std::vector<features::Instance> train = f.exp.data.train;
  const bool drop = state.range(0) != 0;
  if (drop) {
    for (auto& inst : train) {
      inst.x.values[static_cast<std::size_t>(
          features::Feature::kFileSigner)] = 0;
      inst.x.values[static_cast<std::size_t>(features::Feature::kFileCa)] = 0;
    }
  }
  const rules::PartLearner learner;
  std::vector<rules::Rule> learned;
  for (auto _ : state) {
    learned = learner.learn(train);
    benchmark::DoNotOptimize(learned);
  }
  auto unknowns = f.exp.data.unknowns;
  if (drop) {
    for (auto& inst : unknowns) {
      inst.x.values[static_cast<std::size_t>(
          features::Feature::kFileSigner)] = 0;
      inst.x.values[static_cast<std::size_t>(features::Feature::kFileCa)] = 0;
    }
  }
  const rules::RuleClassifier classifier(rules::select_rules(learned, 0.001));
  const auto expansion = rules::expand_unknowns(classifier, unknowns);
  state.counters["rules"] = static_cast<double>(learned.size());
  state.counters["unknown_matched_pct"] = expansion.matched_pct();
}
BENCHMARK(BM_Ablation_DropSigner)
    ->Arg(0)  // full feature set
    ->Arg(1)  // signer + CA dropped
    ->Unit(benchmark::kMillisecond);

// --- Ablation: PART rule set vs. the full decision tree --------------------
// §VI-D argues the pruned, conflict-rejecting rule set beats classifying
// with a whole tree, which cannot abstain from its weak branches.
void BM_Ablation_FullTree(benchmark::State& state) {
  auto& f = fixture();
  const bool use_tree = state.range(0) != 0;
  std::uint64_t tp = 0, fn = 0, fp = 0, tn = 0;
  if (use_tree) {
    const auto tree = rules::DecisionTree::build(f.exp.data.train);
    for (auto _ : state) {
      tp = fn = fp = tn = 0;
      for (const auto& inst : f.exp.data.test) {
        const bool flagged = tree.classify(inst.x);
        if (inst.malicious) ++(flagged ? tp : fn);
        else ++(flagged ? fp : tn);
      }
      benchmark::DoNotOptimize(tp);
    }
    state.counters["tree_nodes"] =
        static_cast<double>(tree.node_count());
  } else {
    const rules::RuleClassifier classifier(
        rules::select_rules(f.exp.all_rules, 0.001));
    for (auto _ : state) {
      tp = fn = fp = tn = 0;
      for (const auto& inst : f.exp.data.test) {
        switch (classifier.classify(inst.x)) {
          case rules::Decision::kMalicious:
            ++(inst.malicious ? tp : fp);
            break;
          case rules::Decision::kBenign:
            ++(inst.malicious ? fn : tn);
            break;
          default:
            break;  // rejected / unmatched: abstain
        }
      }
      benchmark::DoNotOptimize(tp);
    }
  }
  state.counters["tp"] = static_cast<double>(tp);
  state.counters["fp"] = static_cast<double>(fp);
  state.counters["fp_pct_of_benign"] =
      fp + tn == 0 ? 0.0
                   : 100.0 * static_cast<double>(fp) /
                         static_cast<double>(fp + tn);
}
BENCHMARK(BM_Ablation_FullTree)
    ->Arg(0)  // PART rule set + rejection (the paper)
    ->Arg(1)  // full C4.5 tree
    ->Unit(benchmark::kMillisecond);

void emit_trajectory() {
  auto& f = fixture();
  const rules::RuleClassifier classifier(
      rules::select_rules(f.exp.all_rules, 0.001));
  const std::size_t instances =
      f.exp.data.test.size() + f.exp.data.unknowns.size();

  std::printf("\n[longtail] rule-matching trajectory (%zu instances)\n",
              instances);
  struct Run {
    unsigned threads;
    double ms;
    std::uint64_t checksum;
  };
  std::vector<Run> runs;
  for (const unsigned t : {1u, 2u, 8u}) {
    util::set_global_threads(t);
    rules::EvalResult eval;
    rules::ExpansionResult expansion;
    const double ms = bench::time_ms([&] {
      eval = rules::evaluate(classifier, f.exp.data.test);
      expansion = rules::expand_unknowns(classifier, f.exp.data.unknowns);
    });
    runs.push_back({t, ms,
                    eval.true_positives * 1'000'003 +
                        eval.false_positives * 31 +
                        expansion.labeled_malicious});
    std::printf("  threads=%-2u %8.2f ms  %10.0f instances/s\n", t, ms,
                1000.0 * static_cast<double>(instances) / ms);
  }
  // Fold the profile summary in and capture the snapshot before the
  // thread restore: the {1,2,8} fan-out is the fixed workload whose
  // counters bench_compare gates exactly across machines. Rebuilding the
  // pool first drains any still-queued task wrappers so the pool-task
  // counters are exact.
  util::set_global_threads(2);
  util::profile::publish_metrics();
  const std::string metrics_snapshot = util::metrics::snapshot_json();
  util::set_global_threads(util::ThreadPool::default_threads());

  bool deterministic = true;
  double best_ms = runs.front().ms;
  for (const auto& r : runs) {
    deterministic = deterministic && r.checksum == runs.front().checksum;
    best_ms = std::min(best_ms, r.ms);
  }

  std::string runs_json = "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) runs_json += ", ";
    runs_json += bench::JsonObject()
                     .field("threads", runs[i].threads)
                     .field("match_ms", runs[i].ms)
                     .field("instances_per_sec",
                            1000.0 * static_cast<double>(instances) /
                                runs[i].ms)
                     .str();
  }
  runs_json += "]";
  const auto json = bench::JsonObject()
                        .field("bench", std::string_view("rules"))
                        .field("instances",
                               static_cast<std::uint64_t>(instances))
                        .field("rules", static_cast<std::uint64_t>(
                                            classifier.rules().size()))
                        .raw("run",
                             bench::run_manifest_json(
                                 0.05, core::dataset_fingerprint(
                                           f.pipeline.dataset())))
                        .raw("runs", runs_json)
                        .field("serial_ms", runs.front().ms)
                        .field("best_ms", best_ms)
                        .field("speedup", runs.front().ms / best_ms)
                        .field("deterministic", deterministic)
                        .raw("metrics", metrics_snapshot)
                        .str();
  bench::write_bench_json("BENCH_rules.json", json);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* micro = std::getenv("LONGTAIL_BENCH_MICRO");
  if (micro == nullptr || std::string_view(micro) != "0")
    benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  util::metrics::set_enabled(true);
  util::profile::set_enabled(true);
  util::profile::Sampler sampler;  // stops (and emits) before trace flush
  emit_trajectory();
  sampler.stop();
  return 0;
}
