// Reproduces the §IV-C packer analysis: benign and malicious files are
// packed at nearly the same rate (54% vs 58%); 35 of 69 packers serve both
// classes (INNO, UPX, AutoIt, ...); a minority are malicious-exclusive
// (Molebox, NSPack, Themida, ...).
#include "bench_common.hpp"

namespace {
std::string join(const std::vector<std::string_view>& v) {
  std::string out;
  for (const auto name : v) {
    if (!out.empty()) out += ", ";
    out += std::string(name);
  }
  return out.empty() ? "-" : out;
}
}  // namespace

int main() {
  using namespace longtail;
  bench::print_header("Packers (Section IV-C)",
                      "Paper: benign 54% packed, malicious 58%; 35 of 69 "
                      "packers shared.");

  const auto pipeline = bench::make_pipeline();
  const auto stats = analysis::packer_stats(pipeline.annotated());

  util::TextTable table({"Metric", "Measured", "Paper"});
  table.add_row({"benign files packed", util::pct(stats.benign_packed_pct),
                 "54%"});
  table.add_row({"malicious files packed",
                 util::pct(stats.malicious_packed_pct), "58%"});
  table.add_row({"unknown files packed", util::pct(stats.unknown_packed_pct),
                 "-"});
  table.add_row({"distinct packers (b+m)",
                 util::with_commas(stats.distinct_packers), "69"});
  table.add_row({"shared packers", util::with_commas(stats.shared_packers),
                 "35"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nShared packer examples:          %s\n",
              join(stats.shared_examples).c_str());
  std::printf("Malicious-exclusive examples:    %s\n",
              join(stats.malicious_only_examples).c_str());
  std::printf("Benign-exclusive examples:       %s\n",
              join(stats.benign_only_examples).c_str());
  return 0;
}
