// Reproduces Table III: domains with the highest download popularity
// (number of unique machines contacting the domain to download a file) —
// overall, for benign downloads, and for malicious downloads. The paper's
// observation: file-hosting services (softonic.com, mediafire.com, ...)
// top both the benign and the malicious columns.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Table III: domains with highest download popularity",
      "Paper top overall: softonic.com (64,300 machines), inbox.com "
      "(49,481), humipapp.com,\nbestdownload-manager.com, "
      "freepdf-converter.com, cloudfront.net, soft32.com, ...");

  const auto pipeline = bench::make_pipeline();
  const auto pop = analysis::domain_popularity(pipeline.annotated());

  util::TextTable table({"#", "Overall", "# mach", "Benign", "# mach",
                         "Malicious", "# mach"});
  const std::size_t rows =
      std::max({pop.overall.size(), pop.benign.size(), pop.malicious.size()});
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell = [&](const std::vector<analysis::DomainCount>& v,
                    std::size_t k) -> std::pair<std::string, std::string> {
      if (k >= v.size()) return {"-", "-"};
      return {std::string(v[k].first), util::with_commas(v[k].second)};
    };
    const auto [od, oc] = cell(pop.overall, i);
    const auto [bd, bc] = cell(pop.benign, i);
    const auto [md, mc] = cell(pop.malicious, i);
    table.add_row({std::to_string(i + 1), od, oc, bd, bc, md, mc});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
