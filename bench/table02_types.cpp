// Reproduces Table II: breakdown of malicious downloaded files per
// behaviour type, as derived by the AVType extractor (§II-C), plus the
// conflict-resolution mix the paper reports (44% unanimous / 28% voting /
// 23% specificity / 5% manual).
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table II: malicious files per behaviour type",
                      "Types derived from simulated AV labels by the AVType "
                      "voting/specificity pipeline.");

  constexpr double kPaper[] = {22.7, 16.8, 15.4, 11.3, 0.9, 0.6,
                               0.5,  0.3,  0.1,  0.04, 31.3};

  const auto pipeline = bench::make_pipeline();
  const auto breakdown = analysis::type_breakdown(pipeline.annotated());

  util::TextTable table({"Type", "Measured", "Paper"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   util::pct(breakdown[t]), util::pct(kPaper[t], 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  const auto& stats = pipeline.annotated().file_type_stats;
  const auto total = static_cast<double>(stats.resolved_total());
  std::printf(
      "\nType-conflict resolution mix (paper: 44%% none / 28%% voting / "
      "23%% specificity / 5%% manual):\n"
      "  unanimous   %s\n  voting      %s\n  specificity %s\n"
      "  manual      %s\n",
      util::pct(100.0 * static_cast<double>(stats.unanimous) / total).c_str(),
      util::pct(100.0 * static_cast<double>(stats.voting) / total).c_str(),
      util::pct(100.0 * static_cast<double>(stats.specificity) / total)
          .c_str(),
      util::pct(100.0 * static_cast<double>(stats.manual) / total).c_str());
  return 0;
}
