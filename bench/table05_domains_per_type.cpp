// Reproduces Table V: popular download domains per type of malicious file.
// The paper's observations: droppers spread via file-hosting services;
// fakeav domains carry social engineering in the name itself
// (5k-stopadware2014.in, ...); adware rides free live-streaming sites
// (media-watch-app.com, ...).
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table V: popular download domains per malicious type",
                      "Top domains by unique files of each type.");

  const auto pipeline = bench::make_pipeline();
  const auto per_type = analysis::domains_per_type(pipeline.annotated(), 5);

  util::TextTable table({"Type", "Top domains (unique files of the type)"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    std::string joined;
    for (const auto& [domain, count] : per_type[t]) {
      if (!joined.empty()) joined += ", ";
      joined += std::string(domain) + " (" + util::with_commas(count) + ")";
    }
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   joined.empty() ? std::string("-") : joined});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
