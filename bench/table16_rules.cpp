// Reproduces Table XVI: number of PART rules extracted per training month
// and the benign/malicious composition of the rules surviving the tau
// filter (tau = 0.0% and 0.1%). Paper (Feb): 1,766 rules overall; 1,020
// selected at tau=0 (889 benign / 131 malicious).
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Table XVI: extracted rules per training month",
      "Rule counts scale with LONGTAIL_SCALE (paper trains on the full "
      "corpus).");

  const auto pipeline = bench::make_pipeline();

  util::TextTable table({"T_tr", "tau", "Overall rules", "Selected",
                         "# benign", "# malicious"});
  // Training months February..July (as in the paper's table); the test
  // month is the one that follows. Windows run in parallel on the global
  // pool (LONGTAIL_THREADS) with output identical to serial runs.
  std::vector<std::pair<model::Month, model::Month>> windows;
  for (std::size_t m = 1; m + 1 <= model::kNumCollectionMonths - 1; ++m)
    windows.emplace_back(static_cast<model::Month>(m),
                         static_cast<model::Month>(m + 1));
  const auto experiments = pipeline.run_rule_experiments(windows);
  for (const auto& exp : experiments) {
    const auto train = exp.train_month;
    for (const double tau : {0.0, 0.001}) {
      const auto selected = rules::select_rules(exp.all_rules, tau);
      const auto stats = rules::rule_set_stats(selected);
      table.add_row({std::string(model::month_abbrev(train)),
                     util::pct(100 * tau, 1),
                     util::with_commas(exp.all_rules.size()),
                     util::with_commas(stats.total),
                     util::with_commas(stats.benign_rules),
                     util::with_commas(stats.malicious_rules)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nPaper reference (full scale): Feb 1,766 rules -> 1,020 selected at "
      "tau=0 (889 benign, 131 malicious);\nMar 1,680 -> 1,148; Apr 1,272 -> "
      "1,054; May -> 974; Jun 944 -> 740; Jul -> 937.\n");
  return 0;
}
