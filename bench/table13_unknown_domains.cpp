// Reproduces Table XIII: top 10 domains serving unknown files, by number
// of downloads. Paper: inbox.com (75,946), humipapp.com,
// bestdownload-manager.com, freepdf-converter.com, coolrom.com, ...
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table XIII: top 10 download domains (unknown files)",
                      "By number of unknown-file downloads.");

  const auto pipeline = bench::make_pipeline();
  const auto top = analysis::top_unknown_domains(pipeline.annotated());

  util::TextTable table({"#", "Domain", "# downloads"});
  std::size_t rank = 1;
  for (const auto& [domain, count] : top)
    table.add_row({std::to_string(rank++), std::string(domain),
                   util::with_commas(count)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
