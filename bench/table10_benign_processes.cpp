// Reproduces Table X: download behaviour of known-benign processes by
// category. Paper shapes: browsers dominate volume; files downloaded by
// Java/Acrobat Reader are overwhelmingly malicious (Acrobat: 0 benign, 696
// malicious, 78.52% of machines infected); Windows processes initiate many
// malicious downloads (27.71% infected).
#include "bench_common.hpp"

namespace {

std::string type_mix(
    const std::array<double, longtail::model::kNumMalwareTypes>& pct) {
  using longtail::model::MalwareType;
  std::string out;
  for (std::size_t t = 0; t < longtail::model::kNumMalwareTypes; ++t) {
    if (pct[t] < 0.005) continue;
    if (!out.empty()) out += ", ";
    out += std::string(to_string(static_cast<MalwareType>(t))) + "=" +
           longtail::util::pct(pct[t]);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  using namespace longtail;
  bench::print_header(
      "Table X: download behaviour of benign processes by category",
      "Paper infected-machine rates: browsers 24.44%, windows 27.71%, java "
      "33.36%, acrobat 78.52%, other 31.24%.");

  const auto pipeline = bench::make_pipeline();
  const auto rows = analysis::benign_process_behavior(pipeline.annotated());

  util::TextTable table({"Category", "Processes", "Machines", "Unknown",
                         "Benign", "Malicious", "Infected"});
  for (std::size_t c = 0; c < model::kNumProcessCategories; ++c) {
    const auto& r = rows[c];
    table.add_row(
        {std::string(to_string(static_cast<model::ProcessCategory>(c))),
         util::with_commas(r.processes), util::with_commas(r.machines),
         util::with_commas(r.unknown_files), util::with_commas(r.benign_files),
         util::with_commas(r.malicious_files),
         util::pct(r.infected_machines_pct)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nType mix of malicious downloads per category:\n");
  for (std::size_t c = 0; c < model::kNumProcessCategories; ++c) {
    std::printf("  %-20s %s\n",
                std::string(to_string(static_cast<model::ProcessCategory>(c)))
                    .c_str(),
                type_mix(rows[c].type_pct).c_str());
  }
  return 0;
}
