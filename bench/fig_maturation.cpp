// Extension experiment: label maturation — why the paper re-queried
// VirusTotal almost two years after collection (§II-B).
//
// For every file whose *final* verdict is malicious, measure when the
// evidence would have sufficed: the delay from first observation until
// the first trusted-engine signature exists, and the fraction of the
// final labeled set a query at +Delta days would already produce.
#include "bench_common.hpp"

#include "groundtruth/labeler.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: ground-truth maturation after first observation",
      "A collection-time-only VT query would miss most of the eventual "
      "ground truth.");

  const auto pipeline = bench::make_pipeline();
  const auto& ds = pipeline.dataset();
  const auto& a = pipeline.annotated();
  const groundtruth::Labeler labeler;

  std::uint64_t final_malicious = 0, final_benign = 0;
  util::TextTable table({"Query at first-seen +", "labeled malicious",
                         "labeled benign", "still unknown"});
  for (const std::int64_t delta_days : {0L, 7L, 30L, 90L, 180L, 365L, 730L}) {
    std::uint64_t mal = 0, ben = 0, unknown = 0;
    final_malicious = final_benign = 0;
    for (const auto file : a.index.observed_files()) {
      const auto final_verdict = a.verdict(file);
      if (final_verdict != model::Verdict::kMalicious &&
          final_verdict != model::Verdict::kBenign)
        continue;
      ++(final_verdict == model::Verdict::kMalicious ? final_malicious
                                                     : final_benign);
      const auto when =
          a.index.first_seen(file) + delta_days * model::kSecondsPerDay;
      switch (labeler.verdict_as_of(ds.whitelist.contains(file),
                                    ds.vt.query(file), when)) {
        case model::Verdict::kMalicious: ++mal; break;
        case model::Verdict::kBenign: ++ben; break;
        default: ++unknown; break;
      }
    }
    table.add_row(
        {std::to_string(delta_days) + " days",
         util::pct(util::percent(mal, final_malicious)),
         util::pct(util::percent(ben, final_benign)),
         util::with_commas(unknown)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nFiles eventually labeled: %s malicious, %s benign. Signatures "
      "trickle in over months;\nwhitelist hits are immediate, VT-clean "
      "benign labels need a 14-day scan span, and most\nmalicious labels "
      "need weeks of signature development — hence the paper's two-year "
      "re-query.\n",
      util::with_commas(final_malicious).c_str(),
      util::with_commas(final_benign).c_str());
  return 0;
}
