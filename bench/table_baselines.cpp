// Reproduces the §VIII related-work comparison: how reputation-based
// baselines fare on the long tail versus the paper's rule-based system.
//
// The paper's claims: Polonium reports 48% detection at prevalence 2-3 and
// cannot score prevalence-1 files at all (94% of its dataset); systems
// keyed to download-URL reputation (CAMP, Amico) are confused by hosting
// domains that serve both classes (§IV-B). Both baselines are trained
// through April and evaluated on May, next to the PART rule classifier
// trained on April.
#include "bench_common.hpp"

#include "baselines/reputation.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Section VIII: baselines vs. the rule-based system on the long tail",
      "All three train on data before May and are evaluated on labeled May "
      "files.");

  const auto pipeline = bench::make_pipeline();
  const auto& a = pipeline.annotated();
  const auto train_end = model::month_begin(model::Month::kMay);
  const auto eval_end = model::month_end(model::Month::kMay);

  // Count the evaluation universe.
  std::uint64_t labeled = 0;
  for (const auto file : a.index.observed_files()) {
    const auto first = a.index.first_seen(file);
    if (first < train_end || first >= eval_end) continue;
    const auto v = a.verdict(file);
    labeled += v == model::Verdict::kBenign ||
               v == model::Verdict::kMalicious;
  }

  util::TextTable table({"System", "Coverage of labeled May files",
                         "Detection (of decided malicious)",
                         "FP (of decided benign)", "Abstained"});

  const baselines::PrevalenceReputation polonium(a, train_end);
  const auto pe = baselines::evaluate_baseline(polonium, a, train_end,
                                               eval_end);
  table.add_row({"Polonium-style (machine reputation)",
                 util::pct(pe.coverage(labeled)),
                 util::pct(pe.detection_rate()), util::pct(pe.fp_rate(), 2),
                 util::with_commas(pe.abstained)});

  const baselines::UrlReputation camp(a, train_end);
  const auto ce =
      baselines::evaluate_baseline(camp, a, train_end, eval_end);
  table.add_row({"CAMP/Amico-style (URL reputation)",
                 util::pct(ce.coverage(labeled)),
                 util::pct(ce.detection_rate()), util::pct(ce.fp_rate(), 2),
                 util::with_commas(ce.abstained)});

  const auto exp = pipeline.run_rule_experiment(model::Month::kApril,
                                                model::Month::kMay);
  const auto eval = core::LongtailPipeline::evaluate_tau(exp, 0.001);
  const auto decided =
      eval.eval.matched_malicious + eval.eval.matched_benign;
  table.add_row(
      {"Rule-based (this paper)",
       util::pct(util::percent(decided, exp.data.test.size())),
       util::pct(eval.eval.tp_rate()), util::pct(eval.eval.fp_rate(), 2),
       util::with_commas(eval.eval.rejected + eval.eval.unmatched)});

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe rule system scores signed prevalence-1 files that machine "
      "reputation must abstain on,\nand does not inherit the mixed "
      "reputation of file-hosting domains.\n");
  return 0;
}
