// Reproduces Fig. 4: signers in common between malicious and benign files
// with per-signer counts. The paper's finding: even reputable signers
// (AVG Technologies, BitTorrent) appear on malicious files — mostly PUPs.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Fig. 4: common signers between malicious and benign files",
      "Signers that signed both classes, with file counts for each.");

  const auto pipeline = bench::make_pipeline();
  const auto points = analysis::common_signers(pipeline.annotated());

  util::TextTable table({"Signer", "# benign files", "# malicious files"});
  for (const auto& p : points)
    table.add_row({std::string(p.signer), util::with_commas(p.benign_files),
                   util::with_commas(p.malicious_files)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
