// google-benchmark microbenchmarks plus a machine-readable comparison for
// util::FlatMap / util::FlatSet (src/util/flat_table.hpp) — the
// partitioned open-addressing table behind the migrated hot lookup paths
// (prevalence tracking, retransmit dedup, whitelist, reputation,
// interner, chain fixup).
//
// main() times three find implementations over the same 100k-key
// workload — FlatMap scalar probes, FlatMap find_batch (software
// prefetch, kBatchWidth-key windows), and std::unordered_map — plus the
// matching bulk-insert paths, and a sharded concurrent-read scaling pass
// at LONGTAIL_THREADS = 1, 2, 8. Results land in BENCH_hash.json; CI
// pins the schema and gates `find.batched_vs_unordered >= 1.3`, the
// speedup the migration claims. LONGTAIL_BENCH_MICRO=0 skips the micro
// suite; LONGTAIL_HASH_KEYS overrides the key count (the JSON records
// whatever was used, but the CI gate expects the default).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "util/flat_table.hpp"

namespace {

using namespace longtail;

constexpr std::size_t kDefaultKeys = 100'000;
constexpr std::uint64_t kSeed = 0x1005'7a11'5eedULL;

std::size_t bench_keys() {
  if (const char* env = std::getenv("LONGTAIL_HASH_KEYS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  return kDefaultKeys;
}

// Deterministic key material: distinct pseudo-random u64 keys plus a
// shuffled probe order, so every implementation sees the same misses in
// the same sequence and two runs of the bench measure the same workload.
std::vector<std::uint64_t> make_keys(std::size_t n) {
  std::mt19937_64 rng(kSeed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (keys.size() < n) keys.push_back(rng());
  std::shuffle(keys.begin(), keys.end(), rng);
  return keys;
}

std::vector<std::uint64_t> shuffled(std::vector<std::uint64_t> keys,
                                    std::uint64_t salt) {
  std::mt19937_64 rng(kSeed ^ salt);
  std::shuffle(keys.begin(), keys.end(), rng);
  return keys;
}

// ---- google-benchmark micro suite --------------------------------------

void BM_FlatFindScalar(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  util::FlatMap<std::uint64_t, std::uint64_t> table;
  for (const auto k : keys) table.try_emplace(k, k * 3);
  const auto probes = shuffled(keys, 1);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto k : probes) sum += *table.find(k);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes.size()) *
                          state.iterations());
}
BENCHMARK(BM_FlatFindScalar)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_FlatFindBatched(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  util::FlatMap<std::uint64_t, std::uint64_t> table;
  for (const auto k : keys) table.try_emplace(k, k * 3);
  const auto probes = shuffled(keys, 1);
  std::vector<const std::uint64_t*> out(probes.size());
  for (auto _ : state) {
    table.find_batch(probes, out);
    std::uint64_t sum = 0;
    for (const auto* v : out) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes.size()) *
                          state.iterations());
}
BENCHMARK(BM_FlatFindBatched)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_UnorderedFind(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  std::unordered_map<std::uint64_t, std::uint64_t> table;
  for (const auto k : keys) table.emplace(k, k * 3);
  const auto probes = shuffled(keys, 1);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto k : probes) sum += table.find(k)->second;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes.size()) *
                          state.iterations());
}
BENCHMARK(BM_UnorderedFind)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_FlatInsert(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::FlatMap<std::uint64_t, std::uint64_t> table;
    for (const auto k : keys) table.try_emplace(k, k);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys.size()) *
                          state.iterations());
}
BENCHMARK(BM_FlatInsert)->Arg(100'000);

void BM_UnorderedInsert(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> table;
    for (const auto k : keys) table.emplace(k, k);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys.size()) *
                          state.iterations());
}
BENCHMARK(BM_UnorderedInsert)->Arg(100'000);

// ---- BENCH_hash.json trajectory ----------------------------------------

// Best-of-kReps wall time for one full probe pass, in ns per key.
constexpr int kReps = 7;

template <typename Fn>
double best_ns_per_key(std::size_t n, Fn&& pass) {
  double best_ms = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = bench::time_ms(pass);
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return 1e6 * best_ms / static_cast<double>(n);
}

void emit_trajectory() {
  const std::size_t n = bench_keys();
  const auto keys = make_keys(n);
  const auto probes = shuffled(keys, 1);

  util::metrics::set_enabled(true);
  util::FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> unordered;
  const double flat_insert_ns = best_ns_per_key(n, [&] {
    flat.clear();
    for (const auto k : keys) flat.try_emplace(k, k * 3);
  });
  const double unordered_insert_ns = best_ns_per_key(n, [&] {
    unordered.clear();
    for (const auto k : keys) unordered.emplace(k, k * 3);
  });
  std::vector<std::uint64_t> values(keys);
  for (auto& v : values) v *= 3;
  util::FlatMap<std::uint64_t, std::uint64_t> flat_batched;
  const double flat_insert_batched_ns = best_ns_per_key(n, [&] {
    flat_batched.clear();
    flat_batched.insert_batch(keys, values);
  });

  // Each find pass resolves every probe to a value pointer in `out`; the
  // checksum over the resolved values is folded *outside* the timed
  // region so all three implementations time exactly the same work. All
  // three checksums must agree or the comparison is meaningless.
  std::vector<const std::uint64_t*> out(probes.size());
  const auto checksum = [&out] {
    std::uint64_t sum = 0;
    for (const auto* v : out) sum += *v;
    return sum;
  };
  const double flat_scalar_ns = best_ns_per_key(n, [&] {
    for (std::size_t i = 0; i < probes.size(); ++i)
      out[i] = flat.find(probes[i]);
  });
  const std::uint64_t sum_scalar = checksum();
  const double flat_batched_ns =
      best_ns_per_key(n, [&] { flat.find_batch(probes, out); });
  const std::uint64_t sum_batched = checksum();
  const double unordered_ns = best_ns_per_key(n, [&] {
    for (std::size_t i = 0; i < probes.size(); ++i)
      out[i] = &unordered.find(probes[i])->second;
  });
  const std::uint64_t sum_unordered = checksum();
  std::uint64_t sum_batched_table = 0;
  for (const auto k : probes) sum_batched_table += *flat_batched.find(k);
  const bool equivalent = sum_scalar == sum_batched &&
                          sum_scalar == sum_unordered &&
                          sum_scalar == sum_batched_table;

  const double batched_vs_unordered =
      flat_batched_ns > 0 ? unordered_ns / flat_batched_ns : 0.0;
  const double batched_vs_scalar =
      flat_batched_ns > 0 ? flat_scalar_ns / flat_batched_ns : 0.0;
  const double scalar_vs_unordered =
      flat_scalar_ns > 0 ? unordered_ns / flat_scalar_ns : 0.0;

  std::printf(
      "\n[longtail] hash find at %zu keys (ns/key, best of %d): "
      "flat scalar %.1f, flat batched %.1f, unordered %.1f\n"
      "[longtail] batched speedup: %.2fx vs unordered, %.2fx vs scalar; "
      "checksums %s\n",
      n, kReps, flat_scalar_ns, flat_batched_ns, unordered_ns,
      batched_vs_unordered, batched_vs_scalar,
      equivalent ? "equal" : "MISMATCH");

  // Concurrent sharded reads — the contract the migrated parallel scans
  // rely on: const probes from every worker, no synchronization. Reported
  // as total lookups/sec per canonical thread count.
  std::string scaling_json = "[";
  constexpr std::size_t kShards = 64;
  const std::size_t shard = (n + kShards - 1) / kShards;
  for (const unsigned threads : {1u, 2u, 8u}) {
    util::set_global_threads(threads);
    std::vector<std::uint64_t> sums(kShards, 0);
    const double ms = bench::time_ms([&] {
      util::parallel_for(kShards, [&](std::size_t s) {
        const std::size_t begin = s * shard;
        const std::size_t end = std::min(n, begin + shard);
        if (begin >= end) return;
        std::vector<const std::uint64_t*> slice(end - begin);
        flat.find_batch(
            std::span<const std::uint64_t>(probes).subspan(begin, end - begin),
            slice);
        std::uint64_t sum = 0;
        for (const auto* v : slice) sum += *v;
        sums[s] = sum;
      });
    });
    std::uint64_t total = 0;
    for (const auto s : sums) total += s;
    const double rate = ms > 0 ? 1000.0 * static_cast<double>(n) / ms : 0.0;
    std::printf("[longtail] sharded reads threads=%u: %.2f ms (%.0f "
                "lookups/s)%s\n",
                threads, ms, rate, total == sum_scalar ? "" : " MISMATCH");
    if (scaling_json.size() > 1) scaling_json += ", ";
    scaling_json += bench::JsonObject()
                        .field("threads", threads)
                        .field("ms", ms)
                        .field("lookups_per_sec", rate)
                        .field("consistent", total == sum_scalar)
                        .str();
  }
  scaling_json += "]";
  util::set_global_threads(util::ThreadPool::default_threads());

  const auto counters =
      bench::JsonObject()
          .field("probes", util::metrics::counter("util.flat_table.probes")
                               .value())
          .field("prefetch_batches",
                 util::metrics::counter("util.flat_table.prefetch_batches")
                     .value())
          .field("rehashes",
                 util::metrics::counter("util.flat_table.rehashes").value())
          .str();

  const auto json =
      bench::JsonObject()
          .field("bench", std::string_view("hash"))
          .field("keys", static_cast<std::uint64_t>(n))
          .raw("run", bench::run_manifest_json(0.0))
          .raw("find", bench::JsonObject()
                           .field("flat_scalar_ns_per_key", flat_scalar_ns)
                           .field("flat_batched_ns_per_key", flat_batched_ns)
                           .field("unordered_ns_per_key", unordered_ns)
                           .field("batched_vs_unordered", batched_vs_unordered)
                           .field("batched_vs_scalar", batched_vs_scalar)
                           .field("scalar_vs_unordered", scalar_vs_unordered)
                           .str())
          .raw("insert",
               bench::JsonObject()
                   .field("flat_ns_per_key", flat_insert_ns)
                   .field("flat_batched_ns_per_key", flat_insert_batched_ns)
                   .field("unordered_ns_per_key", unordered_insert_ns)
                   .field("flat_vs_unordered",
                          flat_insert_ns > 0
                              ? unordered_insert_ns / flat_insert_ns
                              : 0.0)
                   .str())
          .raw("scaling", scaling_json)
          .raw("counters", counters)
          .field("equivalent", equivalent)
          .field("max_rss_mb", bench::max_rss_mb())
          .str();
  bench::write_bench_json("BENCH_hash.json", json);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* micro = std::getenv("LONGTAIL_BENCH_MICRO");
  if (micro == nullptr || std::string_view(micro) != "0")
    benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_trajectory();
  return 0;
}
