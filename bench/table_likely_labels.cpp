// Extension experiment: the cost of training on "likely" labels.
//
// The paper deliberately excludes likely-benign / likely-malicious files
// from its study "due to our lack of confidence ... and the possibility
// that they introduce noise" (§III). This ablation trains the rule
// learner both ways and measures what the noise costs on the strict
// ground-truth test set.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: training with vs. without likely-* labels",
      "Test set stays strict ground truth in both settings.");

  const auto pipeline = bench::make_pipeline();
  const auto& a = pipeline.annotated();

  util::TextTable table({"Training labels", "# train", "Rules", "Selected",
                         "TP", "FP", "Unknowns matched"});
  for (const bool include_likely : {false, true}) {
    features::FeatureSpace space;
    features::WindowOptions options;
    options.include_likely_as_labels = include_likely;
    const auto data = features::build_window_dataset(
        a, space, model::Month::kMarch, model::Month::kApril, options);
    const rules::PartLearner learner;
    const auto all_rules = learner.learn(data.train);
    auto selected = rules::select_rules(all_rules, 0.001);
    const auto n_selected = selected.size();
    const rules::RuleClassifier classifier(std::move(selected));
    const auto eval = rules::evaluate(classifier, data.test);
    const auto expansion = rules::expand_unknowns(classifier, data.unknowns);
    table.add_row({include_likely ? "GT + likely-*" : "strict GT (paper)",
                   util::with_commas(data.train.size()),
                   util::with_commas(all_rules.size()),
                   util::with_commas(n_selected),
                   util::pct(eval.tp_rate(), 2), util::pct(eval.fp_rate(), 2),
                   util::pct(expansion.matched_pct())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
