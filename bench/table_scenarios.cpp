// Adversarial scenario sweep: replays each named world-level scenario
// (synth/scenario.hpp) — alone and composed with the moderate transport
// fault profile — through the batch pipeline and the streaming serving
// loop, and reports how far the headline reproduction numbers drift from
// the unperturbed baseline, how hard the σ prevalence cap is working, and
// what the serving loop's freshness looks like under burst load.
//
// The interesting acceptance signal is the §VII evasion: the polymorphic
// hash-churn scenario must *reduce* σ-cap saturation and cap drops while
// moving the same raw download volume — the prevalence filter stops
// firing even though the malware distribution never shrank. The sweep
// also re-generates one composed scenario at LONGTAIL_THREADS = 1, 2, 8
// and asserts bit-identical dataset fingerprints. Results go to
// BENCH_scenarios.json (schema pinned in CI).
#include <utility>
#include <vector>

#include "sweep_common.hpp"

namespace {

using namespace longtail;

struct ScenarioRun {
  std::string name;
  synth::ScenarioProfile scenario;
  telemetry::FaultProfile faults;
  bool composed = false;  // scenario x moderate-fault composition
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  bool conservation = true;
  bench::HeadlineMetrics headline;
  bench::SigmaCapStats sigma;
  bench::StreamingReplayStats streaming;
};

ScenarioRun measure(const std::string& name, double scale,
                    const synth::ScenarioProfile& scenario,
                    const telemetry::FaultProfile& faults, bool composed) {
  auto profile = synth::paper_calibration(scale);
  profile.scenario = scenario;
  profile.faults = faults;

  ScenarioRun run;
  run.name = name;
  run.scenario = scenario;
  run.faults = faults;
  run.composed = composed;

  auto ds = synth::generate_dataset(profile);
  run.events = ds.corpus.events.size();
  run.fingerprint = core::dataset_fingerprint(ds);
  const auto& transport = ds.transport_stats;
  run.conservation = faults.transport_active()
                         ? ds.collection_stats.total_seen() ==
                               transport.delivered
                         : transport.reports_offered == 0;
  run.sigma = bench::measure_sigma_cap(ds);

  const core::LongtailPipeline pipeline(std::move(ds));
  run.headline = bench::measure_headline(pipeline);
  run.streaming =
      bench::replay_streaming(pipeline.dataset(), pipeline.annotated());
  return run;
}

std::string run_json(const ScenarioRun& r, const ScenarioRun& base) {
  return bench::JsonObject()
      .field("name", std::string_view(r.name))
      .field("spec", std::string_view(r.scenario.spec()))
      .field("faults", r.faults.any() ? std::string_view(r.faults.spec())
                                      : "none")
      .field("composed", r.composed)
      .field("conservation", r.conservation)
      .raw("headline", bench::headline_json(r.headline, r.events,
                                            r.fingerprint))
      .raw("drift", bench::headline_drift_json(r.headline, base.headline))
      .raw("sigma", bench::sigma_json(r.sigma))
      .raw("streaming", bench::streaming_json(r.streaming))
      .str();
}

}  // namespace

int main() {
  util::metrics::set_enabled(true);
  const double scale = bench::bench_scale(0.02);
  bench::print_header(
      "Scenarios: headline drift under adversarial world stressors",
      "Sweeps the named scenario presets through the generator, alone and\n"
      "composed with the moderate fault profile, measuring batch headline\n"
      "drift, sigma-cap saturation, and streaming freshness under bursts.");
  std::printf("[longtail] sweep at scale %.2f (LONGTAIL_SCALE to override)\n\n",
              scale);

  const auto moderate = *telemetry::named_fault_profile("moderate");
  const ScenarioRun baseline = measure("baseline", scale, {}, {}, false);
  std::vector<ScenarioRun> runs;
  for (const auto name : synth::scenario_preset_names()) {
    const auto sc = *synth::named_scenario_profile(name);
    runs.push_back(measure(std::string(name), scale, sc, {}, false));
    runs.push_back(measure(std::string(name) + "+moderate", scale, sc,
                           moderate, true));
  }

  util::TextTable table({"Scenario", "Events", "Sat files", "Cap drops",
                         "Unk file %", "Unk mach %", "Rule TP %", "Rule FP %",
                         "Peak win", "p99 fresh s"});
  auto add_row = [&](const ScenarioRun& r) {
    table.add_row({r.name, util::with_commas(r.events),
                   util::with_commas(r.sigma.saturated_files),
                   util::with_commas(r.sigma.dropped_prevalence_cap),
                   util::pct(r.headline.unknown_file_pct),
                   util::pct(r.headline.unknown_machine_pct),
                   util::pct(r.headline.rule_tp_rate),
                   util::pct(r.headline.rule_fp_rate),
                   util::with_commas(r.streaming.peak_window_events),
                   util::with_commas(static_cast<std::uint64_t>(
                       r.streaming.freshness.p99_s))});
  };
  add_row(baseline);
  for (const auto& r : runs) add_row(r);
  std::fputs(table.render().c_str(), stdout);

  // §VII evasion check: churn must defeat the prevalence cap (fewer
  // saturated files, fewer cap drops) while raw volume is conserved.
  const ScenarioRun* churn = nullptr;
  for (const auto& r : runs)
    if (r.name == "churn") churn = &r;
  const bool churn_evasion =
      churn != nullptr &&
      churn->sigma.saturated_files < baseline.sigma.saturated_files &&
      churn->sigma.dropped_prevalence_cap <
          baseline.sigma.dropped_prevalence_cap &&
      churn->sigma.total_seen == baseline.sigma.total_seen;

  bool conservation = baseline.conservation;
  bool streaming_conserved = baseline.streaming.conserved;
  for (const auto& r : runs) {
    conservation = conservation && r.conservation;
    streaming_conserved = streaming_conserved && r.streaming.conserved;
  }

  // Determinism across thread counts: the fully-composed scenario over
  // the faulted transport must produce the same dataset at 1, 2, and 8
  // threads.
  auto det_profile = synth::paper_calibration(scale);
  det_profile.scenario = *synth::named_scenario_profile("worst_day");
  det_profile.faults = moderate;
  bool deterministic = true;
  std::uint64_t det_fingerprint = 0;
  for (const unsigned t : {1u, 2u, 8u}) {
    util::set_global_threads(t);
    const auto ds = synth::generate_dataset(det_profile);
    const std::uint64_t fp = core::dataset_fingerprint(ds);
    if (det_fingerprint == 0) det_fingerprint = fp;
    deterministic = deterministic && fp == det_fingerprint;
  }
  util::set_global_threads(util::ThreadPool::default_threads());

  std::printf(
      "\nChurn evasion (saturated files %llu -> %llu, cap drops %llu -> "
      "%llu, raw volume conserved: %s): %s\n"
      "Conservation: %s   Streaming conserved: %s\n"
      "Deterministic across LONGTAIL_THREADS {1,2,8}: %s\n",
      static_cast<unsigned long long>(baseline.sigma.saturated_files),
      static_cast<unsigned long long>(
          churn != nullptr ? churn->sigma.saturated_files : 0),
      static_cast<unsigned long long>(baseline.sigma.dropped_prevalence_cap),
      static_cast<unsigned long long>(
          churn != nullptr ? churn->sigma.dropped_prevalence_cap : 0),
      (churn != nullptr && churn->sigma.total_seen == baseline.sigma.total_seen)
          ? "yes"
          : "NO",
      churn_evasion ? "yes" : "NO", conservation ? "yes" : "NO",
      streaming_conserved ? "yes" : "NO", deterministic ? "yes" : "NO");

  std::string scenarios_json = "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) scenarios_json += ", ";
    scenarios_json += run_json(runs[i], baseline);
  }
  scenarios_json += "]";

  const auto json =
      bench::JsonObject()
          .field("bench", std::string_view("scenarios"))
          .field("scale", scale)
          .raw("run", bench::run_manifest_json(scale, baseline.fingerprint))
          .raw("baseline",
               bench::JsonObject()
                   .raw("headline",
                        bench::headline_json(baseline.headline,
                                             baseline.events,
                                             baseline.fingerprint))
                   .raw("sigma", bench::sigma_json(baseline.sigma))
                   .raw("streaming",
                        bench::streaming_json(baseline.streaming))
                   .str())
          .raw("scenarios", scenarios_json)
          .field("churn_evasion_demonstrated", churn_evasion)
          .field("conservation", conservation)
          .field("streaming_conserved", streaming_conserved)
          .field("deterministic", deterministic)
          .raw("metrics", util::metrics::snapshot_json())
          .str();
  bench::write_bench_json("BENCH_scenarios.json", json);
  return (conservation && streaming_conserved && deterministic &&
          churn_evasion)
             ? 0
             : 1;
}
