// Reproduces Table VII: number of distinct signers per malicious type and
// how many of them also sign benign files. Paper total: 1,870 malicious
// signers, 513 in common with benign.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table VII: common signers among malicious file types",
                      "Counts scale with LONGTAIL_SCALE.");

  constexpr struct {
    std::uint32_t signers, common;
  } kPaper[] = {
      {248, 46}, {691, 108}, {532, 77}, {426, 71}, {11, 2},  {15, 3},
      {14, 4},   {14, 4},    {7, 1},    {9, 4},    {1025, 339},
  };

  const auto pipeline = bench::make_pipeline();
  const auto overlap = analysis::signer_overlap(pipeline.annotated());

  util::TextTable table({"Type", "# Signers", "In common with benign",
                         "paper signers/common"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   util::with_commas(overlap.per_type[t].signers),
                   util::with_commas(overlap.per_type[t].common_with_benign),
                   std::to_string(kPaper[t].signers) + "/" +
                       std::to_string(kPaper[t].common)});
  }
  table.add_row({"Total", util::with_commas(overlap.total.signers),
                 util::with_commas(overlap.total.common_with_benign),
                 "1870/513"});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
