// Reproduces the §VII headline results:
//   * label expansion — 28.30% of the 1,436,829 previously unknown files
//     (Feb-Aug) labeled by the rules, a 233% increase over ground truth,
//     touching 31% of all machines;
//   * feature usage — the file-signer feature appears in 75% of rules;
//     89% of rules have a single condition;
//   * example rules, rendered in the paper's human-readable style.
#include <set>

#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Section VII: expanding ground truth + rule anatomy",
                      "Aggregated over all month pairs at tau=0.1%.");

  const auto pipeline = bench::make_pipeline();
  const auto& a = pipeline.annotated();

  std::uint64_t total_unknowns = 0, matched = 0, labeled_mal = 0,
                labeled_ben = 0;
  std::uint64_t labeled_ground_truth = 0;
  std::set<std::uint32_t> machines_matched;
  std::vector<rules::Rule> all_selected;
  features::FeatureSpace last_space;

  // Distinct machines that downloaded any matched unknown file.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
      file_machines;
  for (const auto e : a.corpus->events)
    file_machines[e.file().raw()].push_back(e.machine().raw());

  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m) {
    const auto exp = pipeline.run_rule_experiment(
        static_cast<model::Month>(m), static_cast<model::Month>(m + 1));
    auto selected = rules::select_rules(exp.all_rules, 0.001);
    const rules::RuleClassifier classifier(selected);
    total_unknowns += exp.data.unknowns.size();
    labeled_ground_truth += exp.data.test.size();
    for (const auto& inst : exp.data.unknowns) {
      const auto decision = classifier.classify(inst.x);
      if (decision == rules::Decision::kMalicious ||
          decision == rules::Decision::kBenign) {
        ++matched;
        ++(decision == rules::Decision::kMalicious ? labeled_mal
                                                   : labeled_ben);
        for (const auto machine : file_machines[inst.file.raw()])
          machines_matched.insert(machine);
      }
    }
    for (auto& rule : selected) all_selected.push_back(std::move(rule));
  }

  util::TextTable table({"Metric", "Measured", "Paper"});
  table.add_row({"unknown files (test windows)",
                 util::with_commas(total_unknowns), "1,436,829"});
  table.add_row({"labeled by rules", util::with_commas(matched), "406,688"});
  table.add_row({"labeled %", util::pct(util::percent(matched,
                                                      total_unknowns), 2),
                 "28.30%"});
  table.add_row({"-> malicious", util::with_commas(labeled_mal), "-"});
  table.add_row({"-> benign", util::with_commas(labeled_ben), "-"});
  table.add_row(
      {"increase over ground truth",
       util::pct(util::percent(matched, labeled_ground_truth), 0) + " extra",
       "233% (2.3x)"});
  table.add_row({"machines touched by matched unknowns",
                 util::with_commas(machines_matched.size()),
                 "294,419 (31% of all)"});
  std::fputs(table.render().c_str(), stdout);

  const auto usage = rules::feature_usage(all_selected);
  std::printf("\nFeature usage across all selected rules (paper: signer 75%%, "
              "packer 8%%, process type 5%%, process signer 4%%, Alexa "
              "1.4%%; 89%% single-condition):\n");
  for (std::size_t f = 0; f < features::kNumFeatures; ++f)
    std::printf("  %-32s %s\n",
                std::string(features::to_string(
                                static_cast<features::Feature>(f)))
                    .c_str(),
                util::pct(usage.pct[f]).c_str());
  std::printf("  %-32s %s\n", "single-condition rules",
              util::pct(usage.single_condition_pct).c_str());

  // A sample of learned rules in the paper's rendering.
  const auto exp = pipeline.run_rule_experiment(model::Month::kMarch,
                                                model::Month::kApril);
  const auto selected = rules::select_rules(exp.all_rules, 0.001);
  std::printf("\nExample learned rules (March training window):\n");
  std::size_t shown = 0;
  for (const auto& rule : selected) {
    if (shown >= 6) break;
    if (rule.coverage < 10) continue;
    std::printf("  %s\n", rule.to_string(exp.space).c_str());
    ++shown;
  }
  return 0;
}
