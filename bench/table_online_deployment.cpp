// Extension experiment: operational deployment vs. retrospective labels.
//
// Table XVII trains on the paper's retrospective ground truth (VT queried
// two years later). An operational deployment retrains monthly with only
// the labels knowable at the retraining moment — signatures still being
// developed are invisible (see fig_maturation). This bench runs both modes
// through the same event replay and scores each against the final ground
// truth.
#include "bench_common.hpp"

#include "deploy/online.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: online deployment with as-of-training-time labels",
      "Both modes retrain each month and classify the following month's "
      "event stream;\naccuracy is scored against the final (two-years-"
      "later) ground truth.");

  const auto pipeline = bench::make_pipeline();

  for (const bool as_of : {false, true}) {
    deploy::OnlineConfig config;
    config.labels_as_of_training_time = as_of;
    deploy::OnlineLabeler labeler(pipeline.dataset(), pipeline.annotated(),
                                  config);
    const auto months = labeler.run();

    std::printf("%s\n", as_of ? "-- operational: labels as of retraining "
                                "time --"
                              : "-- retrospective: final labels (paper's "
                                "setting) --");
    util::TextTable table({"Deploy month", "# train", "Rules", "Events",
                           "-> mal", "-> ben", "TP", "FP"});
    for (std::size_t m = 0; m < months.size(); ++m) {
      const auto& s = months[m];
      table.add_row(
          {std::string(model::month_name(static_cast<model::Month>(m + 1))),
           util::with_commas(s.training_instances),
           util::with_commas(s.rules_active), util::with_commas(s.events),
           util::with_commas(s.decided_malicious),
           util::with_commas(s.decided_benign), util::pct(s.tp_rate(), 2),
           util::pct(s.fp_rate(), 2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "The operational mode trains on fewer labeled files (signatures are "
      "still in development at\nretraining time), so it decides fewer "
      "downloads — quantifying what the two-year label\nmaturation is "
      "worth to the retrospective evaluation.\n");
  return 0;
}
