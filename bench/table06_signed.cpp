// Reproduces Table VI: percentage of signed benign, unknown, and malicious
// files, overall and among files downloaded via browsers. Key shapes:
// droppers/PUPs/adware are heavily signed (85.6%/76%/~84%), bots and
// bankers almost never (1.5%/1.2%); browser-delivered files are more often
// signed in every row; malicious files are signed far more than benign
// (66% vs 30.7%).
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table VI: percentage of signed files",
                      "Per class and behaviour type, overall and "
                      "from-browser.");

  // Paper reference: {overall signed %, browser signed %} (blank cells in
  // the original scan marked with -1).
  constexpr struct {
    double overall, browser;
  } kPaper[] = {
      {85.6, -1},  {76.0, 79.6}, {-1, 91.8},  {-1, -1},   {1.2, 1.8},
      {1.5, 2.2},  {2.8, 4.5},   {44.4, 68.7}, {5.5, 12.3}, {21.2, 25.0},
      {65.1, 71.3},
  };

  const auto pipeline = bench::make_pipeline();
  const auto rates = analysis::signing_rates(pipeline.annotated());

  util::TextTable table({"Type", "# files", "Signed", "# browser files",
                         "Browser signed", "paper signed/browser"});
  auto paper_cell = [](double overall, double browser) {
    auto fmt = [](double v) {
      return v < 0 ? std::string("n/a") : util::pct(v);
    };
    return fmt(overall) + " / " + fmt(browser);
  };
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t) {
    const auto& row = rates.per_type[t];
    table.add_row({std::string(to_string(static_cast<model::MalwareType>(t))),
                   util::with_commas(row.files), util::pct(row.signed_pct),
                   util::with_commas(row.browser_files),
                   util::pct(row.browser_signed_pct),
                   paper_cell(kPaper[t].overall, kPaper[t].browser)});
  }
  table.add_row({"benign", util::with_commas(rates.benign.files),
                 util::pct(rates.benign.signed_pct),
                 util::with_commas(rates.benign.browser_files),
                 util::pct(rates.benign.browser_signed_pct),
                 paper_cell(30.7, 32.1)});
  table.add_row({"unknown", util::with_commas(rates.unknown.files),
                 util::pct(rates.unknown.signed_pct),
                 util::with_commas(rates.unknown.browser_files),
                 util::pct(rates.unknown.browser_signed_pct),
                 paper_cell(38.4, 42.1)});
  table.add_row({"malicious (all)", util::with_commas(rates.malicious.files),
                 util::pct(rates.malicious.signed_pct),
                 util::with_commas(rates.malicious.browser_files),
                 util::pct(rates.malicious.browser_signed_pct),
                 paper_cell(66.0, 81.0)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
