// Reproduces Table VI: percentage of signed benign, unknown, and malicious
// files, overall and among files downloaded via browsers. Key shapes:
// droppers/PUPs/adware are heavily signed (85.6%/76%/~84%), bots and
// bankers almost never (1.5%/1.2%); browser-delivered files are more often
// signed in every row; malicious files are signed far more than benign
// (66% vs 30.7%).
#include "bench_common.hpp"
#include "table_render.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Table VI: percentage of signed files",
                      "Per class and behaviour type, overall and "
                      "from-browser.");

  const auto pipeline = bench::make_pipeline();
  const auto rates = analysis::signing_rates(pipeline.annotated());
  std::fputs(bench::render_table06(rates).c_str(), stdout);
  return 0;
}
