// Reproduces Fig. 1: distribution of malware families (top 25) among
// malicious downloaded files, derived with the AVclass-style family
// extractor, plus the paper's headline that AVclass recovers no family
// for 58% of samples (363 distinct families overall).
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Fig. 1: distribution of malware families (top 25, AVclass)",
      "Paper: 363 distinct families; no family derivable for 58% of "
      "malicious samples.");

  const auto pipeline = bench::make_pipeline();
  const auto families = analysis::family_distribution(pipeline.annotated());

  util::TextTable table({"#", "Family", "Samples", "% of malicious"});
  std::size_t rank = 1;
  for (const auto& [family, count] : families.top) {
    table.add_row({std::to_string(rank++), family, util::with_commas(count),
                   util::pct(util::percent(count, families.total_malicious))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nDistinct families: %s (paper: 363 at full scale)\n"
      "Family unresolved: %s of malicious samples (paper: 58%%)\n",
      util::with_commas(families.distinct_families).c_str(),
      util::pct(100.0 * families.unresolved_fraction()).c_str());
  return 0;
}
