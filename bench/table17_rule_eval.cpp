// Reproduces Table XVII: evaluation of the rule-based classifier per
// (T_tr, T_ts) month pair and tau setting — TP/FP over matched test
// samples, the number of FP-producing rules, and the classification of
// truly unknown files. Paper (tau=0.1%): TP > 95%, FP < 0.32% in every
// month; 22-38% of unknowns matched, most labeled malicious.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Table XVII: rule-classifier evaluation and unknown-file labeling",
      "Conflicting matches are rejected, as in the paper.");

  const auto pipeline = bench::make_pipeline();

  util::TextTable table({"T_tr-T_ts", "tau", "# mal", "TP", "# ben", "FP",
                         "# FP rules", "# unknowns", "matched", "-> mal",
                         "-> ben"});
  // All month windows run in parallel on the global pool (LONGTAIL_THREADS);
  // results are identical to serial per-window calls.
  std::vector<std::pair<model::Month, model::Month>> windows;
  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m)
    windows.emplace_back(static_cast<model::Month>(m),
                         static_cast<model::Month>(m + 1));
  const auto experiments = pipeline.run_rule_experiments(windows);
  const std::vector<double> taus = {0.0, 0.001};
  for (const auto& exp : experiments) {
    const auto train = exp.train_month;
    const auto test = exp.test_month;
    for (const auto& eval : core::LongtailPipeline::evaluate_taus(exp, taus)) {
      const double tau = eval.tau;
      table.add_row({std::string(model::month_abbrev(train)) + "-" +
                         std::string(model::month_abbrev(test)),
                     util::pct(100 * tau, 1),
                     util::with_commas(eval.eval.matched_malicious),
                     util::pct(eval.eval.tp_rate(), 2),
                     util::with_commas(eval.eval.matched_benign),
                     util::pct(eval.eval.fp_rate(), 2),
                     std::to_string(eval.eval.fp_rules.size()),
                     util::with_commas(eval.expansion.total_unknowns),
                     util::pct(eval.expansion.matched_pct(), 2),
                     util::with_commas(eval.expansion.labeled_malicious),
                     util::with_commas(eval.expansion.labeled_benign)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nPaper reference (tau=0.1%%): TP 95.3-99.6%%, FP 0.00-0.32%%, 0-8 FP "
      "rules;\nunknowns matched 24.1-38.0%%, e.g. Jan-Feb 68,368 -> "
      "malicious / 2,312 -> benign.\n");
  return 0;
}
