// Reproduces Fig. 6: distribution of the Alexa ranks of domains hosting
// unknown files — the unknown long tail lives on a mix of popular
// file-hosting domains and unranked tail domains.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header("Fig. 6: Alexa ranks of domains hosting unknown files",
                      "CDF over ranked domains hosting >=1 unknown file.");

  const auto pipeline = bench::make_pipeline();
  const auto unknown = analysis::alexa_of_domains_hosting(
      pipeline.annotated(), model::Verdict::kUnknown);

  util::TextTable table({"Alexa rank <=", "Unknown-hosting CDF"});
  for (const double r : {100.0, 1'000.0, 10'000.0, 100'000.0, 500'000.0,
                         1'000'000.0}) {
    table.add_row({util::with_commas(static_cast<std::uint64_t>(r)),
                   util::pct(100 * unknown.ranks.at(r))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nDomains hosting unknown files: %s (%s unranked)\n",
              util::with_commas(unknown.domains).c_str(),
              util::pct(100 * unknown.unranked_fraction).c_str());
  return 0;
}
