// Reproduces Table IX: top signers that exclusively signed benign or
// malicious files. Paper: TeamViewer (209 files) tops the benign side;
// Somoto Ltd. (5,652 files) the malicious side.
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Table IX: top exclusively-benign and exclusively-malicious signers",
      "Paper benign: TeamViewer 209, Blizzard Entertainment 77, ... "
      "Paper malicious: Somoto Ltd. 5,652, ISBRInstaller 5,127, ...");

  const auto pipeline = bench::make_pipeline();
  const auto top = analysis::top_signers(pipeline.annotated());

  util::TextTable table({"#", "Benign-only signer", "# files",
                         "Malicious-only signer", "# files"});
  const std::size_t rows = std::max(top.top_benign_exclusive.size(),
                                    top.top_malicious_exclusive.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell = [&](const std::vector<analysis::SignerCount>& v,
                    std::size_t k) -> std::pair<std::string, std::string> {
      if (k >= v.size()) return {"-", "-"};
      return {std::string(v[k].first), util::with_commas(v[k].second)};
    };
    const auto [bn, bc] = cell(top.top_benign_exclusive, i);
    const auto [mn, mc] = cell(top.top_malicious_exclusive, i);
    table.add_row({std::to_string(i + 1), bn, bc, mn, mc});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
