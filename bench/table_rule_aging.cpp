// Extension experiment: rule aging. The paper retrains every month; this
// bench measures how rules learned once (on January) degrade when applied
// to every later month — quantifying why monthly retraining is needed
// (signers churn, campaigns rotate domains).
#include "bench_common.hpp"

int main() {
  using namespace longtail;
  bench::print_header(
      "Extension: aging of a fixed rule set (train January once)",
      "Coverage decays with distance from the training window; FP stays "
      "low because rejection and\nthe signer features fail closed "
      "(no-match) rather than open.");

  const auto pipeline = bench::make_pipeline();
  const auto& a = pipeline.annotated();

  // Train once on January.
  features::FeatureSpace space;
  const auto train = features::labeled_instances(
      a, space, model::month_begin(model::Month::kJanuary),
      model::month_end(model::Month::kJanuary));
  const rules::PartLearner learner;
  const auto all_rules = learner.learn(train);
  const rules::RuleClassifier classifier(
      rules::select_rules(all_rules, 0.001));
  std::printf("trained on January: %zu instances -> %zu rules (%zu "
              "selected)\n\n",
              train.size(), all_rules.size(), classifier.rules().size());

  util::TextTable table({"Test month", "# test", "TP", "FP", "matched test",
                         "# unknowns", "unknowns matched"});
  for (std::size_t m = 1; m < model::kNumCollectionMonths; ++m) {
    const auto month = static_cast<model::Month>(m);
    // Reuse the windowed builder for proper train/test disjointness.
    const auto data = features::build_window_dataset(
        a, space, model::Month::kJanuary, month);
    const auto eval = rules::evaluate(classifier, data.test);
    const auto expansion = rules::expand_unknowns(classifier, data.unknowns);
    table.add_row(
        {std::string(model::month_name(month)),
         util::with_commas(data.test.size()), util::pct(eval.tp_rate(), 2),
         util::pct(eval.fp_rate(), 2),
         util::pct(util::percent(
             eval.matched_malicious + eval.matched_benign,
             data.test.size())),
         util::with_commas(expansion.total_unknowns),
         util::pct(expansion.matched_pct())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
