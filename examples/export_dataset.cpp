// Export a generated corpus and the paper-figure series for external
// analysis (pandas/R/gnuplot):
//
//   ./examples/export_dataset [scale] [output-dir]
//
// Writes the corpus as TSV entity tables (see telemetry/io.hpp), a
// verdicts.tsv with the derived labels, and CSV series for Figures 1-6.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/longtail.hpp"
#include "telemetry/io.hpp"
#include "util/csv.hpp"

namespace {

using namespace longtail;

void export_verdicts(const analysis::AnnotatedCorpus& a,
                     const std::string& path) {
  util::DelimitedWriter out(path, '\t');
  out.row("file", "verdict", "type", "family");
  for (std::uint32_t f = 0; f < a.corpus->files.size(); ++f) {
    const auto family = a.file_families[f];
    out.row(f, to_string(a.labels.file_verdicts[f]),
            to_string(a.file_types[f]),
            family == analysis::AnnotatedCorpus::kNoFamily
                ? std::string_view("-")
                : a.derived_families.at(family));
  }
}

void export_cdf(const util::EmpiricalCdf& cdf, const std::string& label,
                const std::vector<double>& grid, util::DelimitedWriter& out) {
  for (const auto& [x, y] : cdf.series(grid)) out.row(label, x, y);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::string dir = argc > 2 ? argv[2] : "longtail_export";

  std::printf("generating at scale %.2f, exporting to %s/ ...\n", scale,
              dir.c_str());
  auto pipeline = core::LongtailPipeline::generate(scale);
  const auto& a = pipeline.annotated();

  telemetry::export_corpus(*a.corpus, dir);
  export_verdicts(a, dir + "/verdicts.tsv");

  // Fig. 1: families.
  {
    util::DelimitedWriter out(dir + "/fig1_families.csv", ',');
    out.row("family", "samples");
    for (const auto& [family, count] :
         analysis::family_distribution(a).top)
      out.row(family, count);
  }
  // Fig. 2: prevalence CDFs.
  {
    util::DelimitedWriter out(dir + "/fig2_prevalence.csv", ',');
    out.row("class", "prevalence", "cdf");
    std::vector<double> grid;
    for (int k = 1; k <= 20; ++k) grid.push_back(k);
    const auto dist = analysis::prevalence_distributions(a);
    export_cdf(dist.all, "all", grid, out);
    export_cdf(dist.benign, "benign", grid, out);
    export_cdf(dist.malicious, "malicious", grid, out);
    export_cdf(dist.unknown, "unknown", grid, out);
  }
  // Figs. 3/6: Alexa-rank CDFs.
  {
    util::DelimitedWriter out(dir + "/fig3_fig6_alexa.csv", ',');
    out.row("class", "rank", "cdf");
    std::vector<double> grid;
    for (double r = 100; r <= 1'000'000; r *= 1.5) grid.push_back(r);
    export_cdf(analysis::alexa_of_domains_hosting(
                   a, model::Verdict::kBenign).ranks,
               "benign", grid, out);
    export_cdf(analysis::alexa_of_domains_hosting(
                   a, model::Verdict::kMalicious).ranks,
               "malicious", grid, out);
    export_cdf(analysis::alexa_of_domains_hosting(
                   a, model::Verdict::kUnknown).ranks,
               "unknown", grid, out);
  }
  // Fig. 4: common-signer scatter.
  {
    util::DelimitedWriter out(dir + "/fig4_common_signers.csv", ',');
    out.row("signer", "benign_files", "malicious_files");
    for (const auto& p : analysis::common_signers(a, 50))
      out.row(p.signer, p.benign_files, p.malicious_files);
  }
  // Fig. 5: transition CDFs.
  {
    util::DelimitedWriter out(dir + "/fig5_transitions.csv", ',');
    out.row("initiator", "day", "cdf");
    const auto t = analysis::transition_analysis(a, 60);
    auto dump = [&](const char* name,
                    const analysis::TransitionCurve& curve) {
      for (std::size_t d = 0; d < curve.cdf_by_day.size(); ++d)
        out.row(name, d, curve.cdf_by_day[d]);
    };
    dump("benign", t.benign);
    dump("adware", t.adware);
    dump("pup", t.pup);
    dump("dropper", t.dropper);
  }

  std::uintmax_t bytes = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir))
    if (entry.is_regular_file()) bytes += entry.file_size();
  std::printf("done: %.1f MiB across %s\n",
              static_cast<double>(bytes) / (1024.0 * 1024.0), dir.c_str());
  return 0;
}
