// Evaluating a malware detector on expanded labels — the paper's stated
// motivation: systems assessed only on the ~17% of files with ground truth
// may look very different on the long tail.
//
// The example builds a toy download-reputation detector (flag files from
// domains with bad reputation or with unpopular signers), then scores it
// twice: against the original ground truth, and against ground truth
// expanded with rule-derived labels (§VI). The deltas show how much of the
// evaluation picture the unknown slice hides.
//
//   ./examples/detector_eval [scale]
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/longtail.hpp"

namespace {

using namespace longtail;

// A deliberately simple reputation detector in the spirit of CAMP/Amico:
// score a file by its hosting domain's malicious share and its signer's
// standing, both computed over the training window.
class ToyReputationDetector {
 public:
  ToyReputationDetector(const analysis::AnnotatedCorpus& a,
                        model::Timestamp train_end) {
    for (const auto e : a.corpus->events) {
      if (e.time() >= train_end) break;
      const auto domain = a.corpus->urls[e.url().raw()].domain.raw();
      auto& d = domains_[domain];
      if (a.is_malicious(e.file()))
        ++d.bad;
      else if (a.is_benign(e.file()))
        ++d.good;
      const auto& meta = a.corpus->files[e.file().raw()];
      if (meta.is_signed) {
        auto& s = signers_[meta.signer.raw()];
        if (a.is_malicious(e.file()))
          ++s.bad;
        else if (a.is_benign(e.file()))
          ++s.good;
      }
    }
  }

  [[nodiscard]] bool flags(const analysis::AnnotatedCorpus& a,
                           const model::DownloadEvent& e) const {
    const auto domain = a.corpus->urls[e.url.raw()].domain.raw();
    double score = 0;
    if (const auto it = domains_.find(domain); it != domains_.end())
      score += it->second.bad_ratio();
    const auto& meta = a.corpus->files[e.file.raw()];
    if (meta.is_signed) {
      if (const auto it = signers_.find(meta.signer.raw());
          it != signers_.end())
        score += it->second.bad_ratio();
    } else {
      score += 0.25;  // unsigned prior
    }
    return score > 0.6;
  }

 private:
  struct Rep {
    std::uint32_t good = 0, bad = 0;
    [[nodiscard]] double bad_ratio() const {
      return good + bad == 0
                 ? 0.0
                 : static_cast<double>(bad) / static_cast<double>(good + bad);
    }
  };
  std::unordered_map<std::uint32_t, Rep> domains_;
  std::unordered_map<std::uint32_t, Rep> signers_;
};

struct Score {
  std::uint64_t tp = 0, fp = 0, fn = 0, tn = 0;
  [[nodiscard]] double detection_rate() const {
    return tp + fn == 0 ? 0.0
                        : 100.0 * static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  [[nodiscard]] double fp_rate() const {
    return fp + tn == 0 ? 0.0
                        : 100.0 * static_cast<double>(fp) /
                              static_cast<double>(fp + tn);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::printf("== detector evaluation on expanded labels (scale %.2f) ==\n",
              scale);

  auto pipeline = core::LongtailPipeline::generate(scale);
  const auto& a = pipeline.annotated();

  // Train reputation through April; evaluate on May's first-seen files.
  const auto train_end = model::month_begin(model::Month::kMay);
  const ToyReputationDetector detector(a, train_end);

  // Expanded labels for May's unknowns: rules learned on April.
  const auto experiment = pipeline.run_rule_experiment(model::Month::kApril,
                                                       model::Month::kMay);
  const rules::RuleClassifier classifier(
      rules::select_rules(experiment.all_rules, 0.001));
  std::unordered_map<std::uint32_t, bool> expanded;  // file -> malicious
  for (const auto& inst : experiment.data.unknowns) {
    switch (classifier.classify(inst.x)) {
      case rules::Decision::kMalicious: expanded[inst.file.raw()] = true; break;
      case rules::Decision::kBenign: expanded[inst.file.raw()] = false; break;
      default: break;
    }
  }

  // Score the detector on May events, under both label sets.
  Score gt_only, with_expansion;
  const auto [begin, end] = a.index.month_range(model::Month::kMay);
  for (std::uint32_t i = begin; i < end; ++i) {
    const auto e = a.corpus->events[i];
    const bool flagged = detector.flags(a, e);

    const auto verdict = a.verdict(e.file());
    if (verdict == model::Verdict::kMalicious ||
        verdict == model::Verdict::kBenign) {
      const bool malicious = verdict == model::Verdict::kMalicious;
      auto& cell = malicious ? (flagged ? gt_only.tp : gt_only.fn)
                             : (flagged ? gt_only.fp : gt_only.tn);
      ++cell;
      auto& cell2 = malicious ? (flagged ? with_expansion.tp
                                         : with_expansion.fn)
                              : (flagged ? with_expansion.fp
                                         : with_expansion.tn);
      ++cell2;
    } else if (verdict == model::Verdict::kUnknown) {
      const auto it = expanded.find(e.file().raw());
      if (it == expanded.end()) continue;  // still unknown: not scoreable
      auto& cell = it->second
                       ? (flagged ? with_expansion.tp : with_expansion.fn)
                       : (flagged ? with_expansion.fp : with_expansion.tn);
      ++cell;
    }
  }

  std::printf("\n%-28s %14s %14s\n", "metric", "ground truth",
              "GT + expansion");
  std::printf("%-28s %14s %14s\n", "scoreable events",
              util::with_commas(gt_only.tp + gt_only.fp + gt_only.fn +
                                gt_only.tn)
                  .c_str(),
              util::with_commas(with_expansion.tp + with_expansion.fp +
                                with_expansion.fn + with_expansion.tn)
                  .c_str());
  std::printf("%-28s %13.2f%% %13.2f%%\n", "detection rate (TP)",
              gt_only.detection_rate(), with_expansion.detection_rate());
  std::printf("%-28s %13.2f%% %13.2f%%\n", "false-positive rate",
              gt_only.fp_rate(), with_expansion.fp_rate());
  std::printf(
      "\nThe expanded evaluation scores the detector on low-prevalence "
      "files it never sees\nin the ground-truth-only setting — exactly the "
      "blind spot the paper warns about.\n");
  return 0;
}
