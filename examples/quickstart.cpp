// Quickstart: generate a calibrated telemetry corpus, run the labeling
// pipeline, reproduce the paper's headline numbers, and learn a first set
// of human-readable classification rules.
//
//   ./examples/quickstart [scale]
//
// `scale` resizes the corpus relative to the paper's dataset (default
// 0.05 — about 150k download events, generated in well under a second).
#include <cstdio>
#include <cstdlib>

#include "core/longtail.hpp"

int main(int argc, char** argv) {
  using namespace longtail;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  std::printf("== longtail quickstart (scale %.2f) ==\n\n", scale);

  // 1. Generate the corpus: machines, processes, files, URLs, and seven
  //    months of download events, plus whitelists and simulated VT scans.
  auto pipeline = core::LongtailPipeline::generate(scale);
  const auto& corpus = pipeline.dataset().corpus;
  const auto& annotated = pipeline.annotated();
  std::printf("corpus: %s events, %s files, %s processes, %s domains, "
              "%s machines active\n",
              util::with_commas(corpus.events.size()).c_str(),
              util::with_commas(corpus.files.size()).c_str(),
              util::with_commas(corpus.processes.size()).c_str(),
              util::with_commas(corpus.domains.size()).c_str(),
              util::with_commas(annotated.index.num_active_machines()).c_str());

  // 2. The paper's headline: most files cannot be labeled at all, yet the
  //    unknown slice touches most machines.
  std::uint64_t unknown_files = 0;
  for (const auto f : annotated.index.observed_files())
    if (annotated.is_unknown(f)) ++unknown_files;
  const auto coverage = analysis::machine_coverage(annotated);
  std::printf(
      "\nunknown files: %s of %s observed (%s)  [paper: 83%%]\n"
      "machines that downloaded an unknown file: %s  [paper: 69%%]\n",
      util::with_commas(unknown_files).c_str(),
      util::with_commas(annotated.index.observed_files().size()).c_str(),
      util::pct(util::percent(unknown_files,
                              annotated.index.observed_files().size()))
          .c_str(),
      util::pct(coverage.pct(model::Verdict::kUnknown)).c_str());

  // 3. Learn classification rules on March, evaluate on April (§VI).
  auto experiment = pipeline.run_rule_experiment(model::Month::kMarch,
                                                 model::Month::kApril);
  auto evaluation = core::LongtailPipeline::evaluate_tau(experiment, 0.001);
  std::printf(
      "\nrule learning (train March, test April, tau = 0.1%%):\n"
      "  %s rules learned, %s selected\n"
      "  TP %s over %s matched malicious, FP %s over %s matched benign\n"
      "  %s of unknown April files labeled by the rules\n",
      util::with_commas(experiment.all_rules.size()).c_str(),
      util::with_commas(evaluation.selected.total).c_str(),
      util::pct(evaluation.eval.tp_rate(), 2).c_str(),
      util::with_commas(evaluation.eval.matched_malicious).c_str(),
      util::pct(evaluation.eval.fp_rate(), 2).c_str(),
      util::with_commas(evaluation.eval.matched_benign).c_str(),
      util::pct(evaluation.expansion.matched_pct()).c_str());

  // 4. Rules are human-readable, as in the paper.
  std::printf("\nsample rules:\n");
  const auto selected = rules::select_rules(experiment.all_rules, 0.001);
  std::size_t shown = 0;
  for (const auto& rule : selected) {
    if (shown++ >= 5) break;
    std::printf("  %s\n", rule.to_string(experiment.space).c_str());
  }
  return 0;
}
