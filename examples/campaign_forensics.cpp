// Campaign forensics: the measurement-study half of the paper as an
// analyst workflow. Starting from the labeled corpus, the example digs
// into one malware type (fakeav), characterizes its distribution
// infrastructure and signing habits, and follows infected machines to show
// the adware/PUP -> malware escalation of §V-B.
//
//   ./examples/campaign_forensics [scale]
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "core/longtail.hpp"

int main(int argc, char** argv) {
  using namespace longtail;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::printf("== campaign forensics (scale %.2f) ==\n", scale);

  auto pipeline = core::LongtailPipeline::generate(scale);
  const auto& a = pipeline.annotated();
  const auto& corpus = *a.corpus;

  // --- 1. The fakeav campaign footprint --------------------------------
  std::unordered_set<std::uint32_t> fakeav_files, fakeav_machines;
  util::TopK<std::uint32_t> fakeav_domains;
  std::uint64_t fakeav_signed = 0;
  for (const auto e : corpus.events) {
    if (!a.is_malicious(e.file()) ||
        a.type_of(e.file()) != model::MalwareType::kFakeAv)
      continue;
    fakeav_machines.insert(e.machine().raw());
    fakeav_domains.add(corpus.urls[e.url().raw()].domain.raw());
    if (fakeav_files.insert(e.file().raw()).second &&
        corpus.files[e.file().raw()].is_signed)
      ++fakeav_signed;
  }
  std::printf("\nfakeav campaign: %s samples infected %s machines "
              "(%s signed — the paper's fakeavs are almost never signed)\n",
              util::with_commas(fakeav_files.size()).c_str(),
              util::with_commas(fakeav_machines.size()).c_str(),
              util::pct(util::percent(fakeav_signed, fakeav_files.size()))
                  .c_str());

  std::printf("distribution domains (note the social engineering in the "
              "names, as in Table V):\n");
  for (const auto& [domain, downloads] : fakeav_domains.top(5))
    std::printf("  %-30s %s downloads\n",
                std::string(corpus.domain_names.at(domain)).c_str(),
                util::with_commas(downloads).c_str());

  // --- 2. Who distributes droppers, and under what signature? ----------
  const auto top = analysis::top_signers(a, /*top_k=*/3);
  const auto& droppers =
      top.per_type[static_cast<std::size_t>(model::MalwareType::kDropper)];
  std::printf("\ndropper signers (Table VIII's 'Softonic International' "
              "pattern — bundled installers):\n");
  for (const auto& [name, count] : droppers.top)
    std::printf("  %-40s %s files\n", std::string(name).c_str(),
                util::with_commas(count).c_str());

  // --- 3. The adware -> malware escalation (Fig. 5) --------------------
  const auto transitions = analysis::transition_analysis(a);
  std::printf(
      "\nescalation after first adware/PUP install (Fig. 5):\n"
      "  within 1 day:  adware %s, pup %s, dropper %s (benign control %s)\n"
      "  within 5 days: adware %s, pup %s, dropper %s (benign control %s)\n",
      util::pct(100 * transitions.adware.at_day(1)).c_str(),
      util::pct(100 * transitions.pup.at_day(1)).c_str(),
      util::pct(100 * transitions.dropper.at_day(1)).c_str(),
      util::pct(100 * transitions.benign.at_day(1)).c_str(),
      util::pct(100 * transitions.adware.at_day(5)).c_str(),
      util::pct(100 * transitions.pup.at_day(5)).c_str(),
      util::pct(100 * transitions.dropper.at_day(5)).c_str(),
      util::pct(100 * transitions.benign.at_day(5)).c_str());

  // --- 4. One infected machine's story ---------------------------------
  // Find a machine with a dropper followed by other malware and print its
  // download timeline.
  for (std::uint32_t m = 0; m < corpus.machine_count; ++m) {
    const auto timeline = a.index.machine_events(model::MachineId{m});
    bool saw_dropper = false;
    int malicious_count = 0;
    for (const auto i : timeline) {
      const auto e = corpus.events[i];
      if (!a.is_malicious(e.file())) continue;
      ++malicious_count;
      saw_dropper |= a.type_of(e.file()) == model::MalwareType::kDropper;
    }
    if (!saw_dropper || malicious_count < 3 || timeline.size() > 10) continue;

    std::printf("\ntimeline of machine %u (dropper-initiated chain):\n", m);
    for (const auto i : timeline) {
      const auto e = corpus.events[i];
      const auto verdict = a.verdict(e.file());
      std::string what{to_string(verdict)};
      if (verdict == model::Verdict::kMalicious)
        what += std::string("/") + std::string(to_string(a.type_of(e.file())));
      std::printf("  day %3lld  %-22s from %s\n",
                  static_cast<long long>(model::day_of(e.time())), what.c_str(),
                  std::string(corpus.domain_of_url(e.url())).c_str());
    }
    break;
  }
  return 0;
}
