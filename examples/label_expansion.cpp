// Label expansion walkthrough (§VI): the scenario the paper builds toward
// — an analyst wants to grow the labeled corpus so future malware
// detectors can be evaluated on more than the 17% of files with ground
// truth.
//
// The example trains on each month, sweeps the tau error threshold to show
// the selection trade-off, demonstrates why conflicting matches are
// rejected, and prints the month-by-month expansion of the labeled set.
//
//   ./examples/label_expansion [scale]
#include <cstdio>
#include <cstdlib>

#include "core/longtail.hpp"

namespace {

using namespace longtail;

void tau_sweep(const core::RuleExperiment& experiment) {
  std::printf("\n-- tau sweep (train %s, test %s) --\n",
              std::string(model::month_name(experiment.train_month)).c_str(),
              std::string(model::month_name(experiment.test_month)).c_str());
  std::printf("%8s %9s %8s %8s %10s %12s\n", "tau", "selected", "TP",
              "FP", "rejected", "unk matched");
  for (const double tau : {0.0, 0.001, 0.005, 0.01, 0.05}) {
    const auto eval = core::LongtailPipeline::evaluate_tau(experiment, tau);
    std::printf("%7.2f%% %9zu %7.2f%% %7.2f%% %10llu %11.2f%%\n", 100 * tau,
                eval.selected.total, eval.eval.tp_rate(), eval.eval.fp_rate(),
                static_cast<unsigned long long>(eval.eval.rejected),
                eval.expansion.matched_pct());
  }
  std::printf("(the paper stops at tau = 0.1%%: beyond it, extra rules add "
              "matches but erode precision)\n");
}

void conflict_demo(const core::RuleExperiment& experiment) {
  // Compare the paper's conflict-rejection against majority voting and
  // decision-list semantics on the same rule set.
  std::printf("\n-- conflict handling (tau = 0.1%%) --\n");
  std::printf("%-16s %8s %8s %10s\n", "policy", "TP", "FP", "rejected");
  for (const auto policy :
       {rules::ConflictPolicy::kReject, rules::ConflictPolicy::kMajorityVote,
        rules::ConflictPolicy::kDecisionList}) {
    const auto eval =
        core::LongtailPipeline::evaluate_tau(experiment, 0.001, policy);
    const char* name = policy == rules::ConflictPolicy::kReject
                           ? "reject (paper)"
                       : policy == rules::ConflictPolicy::kMajorityVote
                           ? "majority vote"
                           : "decision list";
    std::printf("%-16s %7.2f%% %7.2f%% %10llu\n", name, eval.eval.tp_rate(),
                eval.eval.fp_rate(),
                static_cast<unsigned long long>(eval.eval.rejected));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::printf("== label expansion (scale %.2f) ==\n", scale);

  auto pipeline = core::LongtailPipeline::generate(scale);

  // Month-by-month expansion, as in Table XVII.
  std::printf("\n-- month-by-month expansion at tau = 0.1%% --\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "window", "unknowns", "matched",
              "-> mal", "-> ben");
  std::uint64_t total_unknown = 0, total_matched = 0;
  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m) {
    const auto exp = pipeline.run_rule_experiment(
        static_cast<model::Month>(m), static_cast<model::Month>(m + 1));
    const auto eval = core::LongtailPipeline::evaluate_tau(exp, 0.001);
    std::printf("%-3s-%-6s %10s %9.2f%% %10s %10s\n",
                std::string(model::month_abbrev(exp.train_month)).c_str(),
                std::string(model::month_abbrev(exp.test_month)).c_str(),
                util::with_commas(eval.expansion.total_unknowns).c_str(),
                eval.expansion.matched_pct(),
                util::with_commas(eval.expansion.labeled_malicious).c_str(),
                util::with_commas(eval.expansion.labeled_benign).c_str());
    total_unknown += eval.expansion.total_unknowns;
    total_matched += eval.expansion.matched();
  }
  std::printf("overall: %s of %s unknowns labeled (%s)  [paper: 28.30%% — a "
              "2.3x increase over ground truth]\n",
              longtail::util::with_commas(total_matched).c_str(),
              longtail::util::with_commas(total_unknown).c_str(),
              longtail::util::pct(
                  longtail::util::percent(total_matched, total_unknown), 2)
                  .c_str());

  const auto exp = pipeline.run_rule_experiment(model::Month::kMarch,
                                                model::Month::kApril);
  tau_sweep(exp);
  conflict_demo(exp);
  return 0;
}
