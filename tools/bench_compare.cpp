// Bench-trajectory gate: compares two BENCH_pipeline.json files and fails
// (exit 1) when the current run regresses more than the threshold on any
// gated metric. CI runs this against the committed baseline
// (bench/baselines/BENCH_pipeline.baseline.json) so a perf regression
// breaks the build instead of rotting silently; refresh instructions live
// next to the baseline file.
//
//   bench_compare <baseline.json> <current.json>
//                 [--threshold 0.15] [--hist-threshold 0.50] [--no-metrics]
//
// Wall-clock gate (best across runs, direction per metric):
//   events_per_sec     — higher is better
//   resolve_events_ms  — best (min) across runs, lower is better
//   analysis_ms        — best (min) across runs, lower is better
//
// Metrics-drift gate (over the embedded "metrics" snapshot, skipped with
// --no-metrics or when either file lacks the snapshot):
//   counters           — the perf workload is deterministic, so every
//                        counter present in both files must match EXACTLY;
//                        a drifted count means the work itself changed
//                        (shards lost, events skipped), which wall time
//                        alone can hide.
//   histograms         — sample count must match exactly (same reasoning);
//                        sum_ms may not regress by more than the histogram
//                        threshold (sums under 1 ms are skipped as noise).
//
// The wall-clock parser is deliberately minimal: it extracts every numeric
// value of an exactly-quoted key anywhere in the file (the bench JSON is
// flat and self-produced, machine noise is handled by taking each run
// set's best). The metrics parser walks the balanced-brace "metrics"
// object and tolerates arbitrary whitespace, so jq-pretty-printed files
// gate the same as ours. A metric missing from either file is reported
// and skipped, not failed, so the gate survives schema evolution in
// either direction.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Metric {
  const char* key;
  bool higher_is_better;
};

constexpr Metric kGatedMetrics[] = {
    {"events_per_sec", true},
    {"resolve_events_ms", false},
    {"analysis_ms", false},
    // Streaming section: sustained untrusted-ingest throughput. The key
    // is distinct from "events_per_sec" on purpose — the exact-quoted-key
    // scan must not conflate the two.
    {"ingest_events_per_sec", true},
};

// Histogram sums below this many milliseconds are too noisy to gate.
constexpr double kHistSumFloorMs = 1.0;

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every numeric value stored under `"key": ` (exact key, including the
// opening quote, so "resolve_events_ms" never matches
// "synth.resolve_events_ms").
std::vector<double> values_of(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  std::vector<double> out;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size())) {
    const char* start = json.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end != start) out.push_back(v);
  }
  return out;
}

// A run set's representative value: the best across runs (max for
// throughput, min for wall time), so thread-count fan-out and machine
// noise both shrink instead of amplifying.
bool best_of(const std::string& json, const Metric& m, double* out) {
  const auto vals = values_of(json, m.key);
  if (vals.empty()) return false;
  *out = m.higher_is_better ? *std::max_element(vals.begin(), vals.end())
                            : *std::min_element(vals.begin(), vals.end());
  return true;
}

// ---- metrics snapshot parsing ---------------------------------------------

void skip_ws(const std::string& s, std::size_t* p) {
  while (*p < s.size() && (s[*p] == ' ' || s[*p] == '\t' || s[*p] == '\n' ||
                           s[*p] == '\r'))
    ++*p;
}

// The balanced {...} object following `"key":`, or "" when absent.
// Search starts at `from`, which lets the caller scope the lookup to an
// enclosing object's extent.
std::string object_of(const std::string& json, const char* key,
                      std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\"";
  std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  skip_ws(json, &pos);
  if (pos >= json.size() || json[pos] != ':') return "";
  ++pos;
  skip_ws(json, &pos);
  if (pos >= json.size() || json[pos] != '{') return "";
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = pos; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}' && --depth == 0) return json.substr(pos, i - pos + 1);
  }
  return "";
}

// Key → raw value text for one flat JSON object level: values are numbers
// or balanced {...} sub-objects (all the metrics snapshot contains).
std::map<std::string, std::string> parse_flat_object(const std::string& obj) {
  std::map<std::string, std::string> out;
  std::size_t p = 0;
  skip_ws(obj, &p);
  if (p >= obj.size() || obj[p] != '{') return out;
  ++p;
  for (;;) {
    skip_ws(obj, &p);
    if (p >= obj.size() || obj[p] == '}') return out;
    if (obj[p] == ',') {
      ++p;
      continue;
    }
    if (obj[p] != '"') return out;  // malformed; keep what we have
    const std::size_t key_end = obj.find('"', p + 1);
    if (key_end == std::string::npos) return out;
    std::string key = obj.substr(p + 1, key_end - p - 1);
    p = key_end + 1;
    skip_ws(obj, &p);
    if (p >= obj.size() || obj[p] != ':') return out;
    ++p;
    skip_ws(obj, &p);
    if (p < obj.size() && obj[p] == '{') {
      int depth = 0;
      std::size_t i = p;
      for (; i < obj.size(); ++i) {
        if (obj[i] == '{') ++depth;
        if (obj[i] == '}' && --depth == 0) break;
      }
      if (i >= obj.size()) return out;
      out.emplace(std::move(key), obj.substr(p, i - p + 1));
      p = i + 1;
    } else {
      const std::size_t start = p;
      while (p < obj.size() && obj[p] != ',' && obj[p] != '}') ++p;
      out.emplace(std::move(key), obj.substr(start, p - start));
    }
  }
}

double first_value(const std::string& json, const char* key, double fallback) {
  const auto vals = values_of(json, key);
  return vals.empty() ? fallback : vals.front();
}

// Exact-counter and histogram-drift comparison. Returns the number of
// drifted metrics; keys missing from either side are skipped so schema
// evolution in either direction stays green.
int gate_metrics(const std::string& baseline, const std::string& current,
                 double hist_threshold) {
  const std::string base_m = object_of(baseline, "metrics");
  const std::string cur_m = object_of(current, "metrics");
  if (base_m.empty() || cur_m.empty()) {
    std::printf("  metrics            skipped (missing from %s)\n",
                base_m.empty() ? "baseline" : "current");
    return 0;
  }

  int drifted = 0;
  const auto base_counters = parse_flat_object(object_of(base_m, "counters"));
  const auto cur_counters = parse_flat_object(object_of(cur_m, "counters"));
  std::size_t counters_checked = 0;
  for (const auto& [name, base_text] : base_counters) {
    // profile.* metrics describe how the machine scheduled the run (e.g.
    // how many pool helpers were actually submitted), not the workload;
    // they are legitimately timing-dependent and exempt from gating.
    if (name.rfind("profile.", 0) == 0) continue;
    const auto it = cur_counters.find(name);
    if (it == cur_counters.end()) continue;
    ++counters_checked;
    const auto base_v = std::strtoull(base_text.c_str(), nullptr, 10);
    const auto cur_v = std::strtoull(it->second.c_str(), nullptr, 10);
    if (base_v != cur_v) {
      std::printf("  counter %-32s baseline %llu  current %llu  DRIFTED\n",
                  name.c_str(), static_cast<unsigned long long>(base_v),
                  static_cast<unsigned long long>(cur_v));
      ++drifted;
    }
  }

  const auto base_hists = parse_flat_object(object_of(base_m, "histograms"));
  const auto cur_hists = parse_flat_object(object_of(cur_m, "histograms"));
  std::size_t hists_checked = 0;
  for (const auto& [name, base_text] : base_hists) {
    if (name.rfind("profile.", 0) == 0) continue;  // same exemption
    const auto it = cur_hists.find(name);
    if (it == cur_hists.end()) continue;
    ++hists_checked;
    const double base_count = first_value(base_text, "count", -1);
    const double cur_count = first_value(it->second, "count", -1);
    if (base_count >= 0 && cur_count >= 0 && base_count != cur_count) {
      std::printf(
          "  histogram %-30s baseline count %.0f  current count %.0f  "
          "DRIFTED\n",
          name.c_str(), base_count, cur_count);
      ++drifted;
      continue;
    }
    const double base_sum = first_value(base_text, "sum_ms", -1);
    const double cur_sum = first_value(it->second, "sum_ms", -1);
    if (base_sum < kHistSumFloorMs || cur_sum < 0) continue;
    const double delta = (cur_sum - base_sum) / base_sum;
    if (delta > hist_threshold) {
      std::printf(
          "  histogram %-30s baseline sum %.2fms  current sum %.2fms  "
          "%+.0f%%  REGRESSED\n",
          name.c_str(), base_sum, cur_sum, delta * 100.0);
      ++drifted;
    }
  }
  std::printf(
      "  metrics            %zu counters exact, %zu histograms gated: "
      "%d drifted\n",
      counters_checked, hists_checked, drifted);
  return drifted;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  double hist_threshold = 0.50;
  bool gate_metrics_drift = true;
  const char* paths[2] = {nullptr, nullptr};
  int n_paths = 0;
  bool bad = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--hist-threshold" && i + 1 < argc) {
      hist_threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--no-metrics") {
      gate_metrics_drift = false;
    } else if (!arg.empty() && arg[0] == '-') {
      bad = true;
    } else if (n_paths < 2) {
      paths[n_paths++] = argv[i];
    } else {
      bad = true;
    }
  }
  if (bad || n_paths != 2 || threshold <= 0.0 || hist_threshold <= 0.0) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--threshold 0.15] [--hist-threshold 0.50] "
                 "[--no-metrics]\n");
    return 2;
  }
  const std::string baseline = slurp(paths[0]);
  const std::string current = slurp(paths[1]);

  std::printf("bench gate: %s vs %s (threshold %.0f%%, histograms %.0f%%)\n",
              paths[1], paths[0], threshold * 100.0, hist_threshold * 100.0);
  int regressions = 0;
  for (const Metric& m : kGatedMetrics) {
    double base = 0.0;
    double cur = 0.0;
    if (!best_of(baseline, m, &base) || !best_of(current, m, &cur) ||
        base <= 0.0) {
      std::printf("  %-18s skipped (missing from %s)\n", m.key,
                  values_of(baseline, m.key).empty() ? "baseline" : "current");
      continue;
    }
    // Positive delta = worse, regardless of the metric's direction.
    const double delta =
        m.higher_is_better ? (base - cur) / base : (cur - base) / base;
    const bool regressed = delta > threshold;
    std::printf("  %-18s baseline %12.1f  current %12.1f  %+6.1f%%  %s\n",
                m.key, base, cur, -delta * 100.0,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }
  if (gate_metrics_drift)
    regressions += gate_metrics(baseline, current, hist_threshold);
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d metric(s) regressed more than the "
                 "threshold\n",
                 regressions);
    return 1;
  }
  return 0;
}
