// Bench-trajectory gate: compares two BENCH_pipeline.json files and fails
// (exit 1) when the current run regresses more than the threshold on any
// gated metric. CI runs this against the committed baseline
// (bench/baselines/BENCH_pipeline.baseline.json) so a perf regression
// breaks the build instead of rotting silently; refresh instructions live
// next to the baseline file.
//
//   bench_compare <baseline.json> <current.json> [--threshold 0.15]
//
// Gated metrics:
//   events_per_sec     — best across runs, higher is better
//   resolve_events_ms  — best (min) across runs, lower is better
//   analysis_ms        — best (min) across runs, lower is better
//
// The parser is deliberately minimal: it extracts every numeric value of
// an exactly-quoted key anywhere in the file (the bench JSON is flat and
// self-produced, machine noise is handled by taking each run set's best).
// A metric missing from either file is reported and skipped, not failed,
// so the gate survives schema evolution in either direction.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Metric {
  const char* key;
  bool higher_is_better;
};

constexpr Metric kGatedMetrics[] = {
    {"events_per_sec", true},
    {"resolve_events_ms", false},
    {"analysis_ms", false},
};

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every numeric value stored under `"key": ` (exact key, including the
// opening quote, so "resolve_events_ms" never matches
// "synth.resolve_events_ms").
std::vector<double> values_of(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  std::vector<double> out;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size())) {
    const char* start = json.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end != start) out.push_back(v);
  }
  return out;
}

// A run set's representative value: the best across runs (max for
// throughput, min for wall time), so thread-count fan-out and machine
// noise both shrink instead of amplifying.
bool best_of(const std::string& json, const Metric& m, double* out) {
  const auto vals = values_of(json, m.key);
  if (vals.empty()) return false;
  *out = m.higher_is_better ? *std::max_element(vals.begin(), vals.end())
                            : *std::min_element(vals.begin(), vals.end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  if (argc >= 5 && std::strcmp(argv[3], "--threshold") == 0)
    threshold = std::strtod(argv[4], nullptr);
  if (argc < 3 || threshold <= 0.0) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--threshold 0.15]\n");
    return 2;
  }
  const std::string baseline = slurp(argv[1]);
  const std::string current = slurp(argv[2]);

  std::printf("bench gate: %s vs %s (threshold %.0f%%)\n", argv[2], argv[1],
              threshold * 100.0);
  int regressions = 0;
  for (const Metric& m : kGatedMetrics) {
    double base = 0.0;
    double cur = 0.0;
    if (!best_of(baseline, m, &base) || !best_of(current, m, &cur) ||
        base <= 0.0) {
      std::printf("  %-18s skipped (missing from %s)\n", m.key,
                  values_of(baseline, m.key).empty() ? "baseline" : "current");
      continue;
    }
    // Positive delta = worse, regardless of the metric's direction.
    const double delta =
        m.higher_is_better ? (base - cur) / base : (cur - base) / base;
    const bool regressed = delta > threshold;
    std::printf("  %-18s baseline %12.1f  current %12.1f  %+6.1f%%  %s\n",
                m.key, base, cur, -delta * 100.0,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d metric(s) regressed more than %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  return 0;
}
