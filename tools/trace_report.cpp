// trace_report: offline analyzer for the Chrome trace JSON written by
// LONGTAIL_TRACE (see docs/observability.md). Computes the critical path
// through the span tree, self-time hotspots, per-phase parallel
// efficiency, and counter summaries; prints Markdown to stdout and can
// additionally write Markdown/JSON files for CI artifacts.
//
//   trace_report <trace.json> [--md out.md] [--json out.json] [--top N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/trace_analysis.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_report <trace.json> [--md out.md] "
               "[--json out.json] [--top N]\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  if (!out) {
    std::fprintf(stderr, "trace_report: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, md_path, json_path;
  std::size_t top_n = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--md" && i + 1 < argc) {
      md_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (top_n == 0) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage();
    }
  }
  if (trace_path.empty()) return usage();

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot read %s\n", trace_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  namespace ta = longtail::util::trace_analysis;
  ta::Report report;
  try {
    report = ta::analyze(buf.str(), top_n);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 1;
  }

  const std::string md = ta::render_markdown(report);
  std::fputs(md.c_str(), stdout);
  if (!md_path.empty() && !write_file(md_path, md)) return 1;
  if (!json_path.empty() && !write_file(json_path, ta::render_json(report)))
    return 1;
  return 0;
}
