// longtail_cli — command-line front end to the library.
//
//   longtail_cli summary      [--scale S] [--seed N]
//   longtail_cli rules        [--scale S] [--seed N] [--train Mon]
//                             [--test Mon] [--tau T] [--max-rules K]
//   longtail_cli expand       [--scale S] [--seed N] [--tau T]
//   longtail_cli transitions  [--scale S] [--seed N]
//   longtail_cli export       [--scale S] [--seed N] [--out DIR]
//
// Months are Jan..Jul. All output is plain text; `export` writes the TSV
// corpus (see telemetry/io.hpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/longtail.hpp"
#include "telemetry/io.hpp"

namespace {

using namespace longtail;

struct Options {
  std::string command;
  double scale = 0.05;
  std::uint64_t seed = 20140101;
  model::Month train = model::Month::kMarch;
  model::Month test = model::Month::kApril;
  double tau = 0.001;
  std::size_t max_rules = 20;
  std::string out = "longtail_export";
};

std::optional<model::Month> parse_month(const std::string& s) {
  for (std::size_t m = 0; m < model::kNumCollectionMonths; ++m) {
    const auto month = static_cast<model::Month>(m);
    if (s == model::month_abbrev(month) || s == model::month_name(month))
      return month;
  }
  return std::nullopt;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: longtail_cli <summary|rules|expand|transitions|export> "
      "[--scale S] [--seed N]\n"
      "                    [--train Mon] [--test Mon] [--tau T] "
      "[--max-rules K] [--out DIR]\n");
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options opt;
  opt.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--scale") {
      opt.scale = std::atof(value.c_str());
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--tau") {
      opt.tau = std::atof(value.c_str());
    } else if (flag == "--max-rules") {
      opt.max_rules = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--out") {
      opt.out = value;
    } else if (flag == "--train" || flag == "--test") {
      const auto month = parse_month(value);
      if (!month) {
        std::fprintf(stderr, "unknown month '%s'\n", value.c_str());
        return std::nullopt;
      }
      (flag == "--train" ? opt.train : opt.test) = *month;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return std::nullopt;
    }
  }
  if (opt.scale <= 0 || opt.scale > 2.0) {
    std::fprintf(stderr, "--scale must be in (0, 2]\n");
    return std::nullopt;
  }
  return opt;
}

core::LongtailPipeline make_pipeline(const Options& opt) {
  auto profile = synth::paper_calibration(opt.scale);
  profile.seed = opt.seed;
  std::printf("[longtail] scale %.2f, seed %llu\n\n", opt.scale,
              static_cast<unsigned long long>(opt.seed));
  return core::LongtailPipeline(profile);
}

int cmd_summary(const Options& opt) {
  const auto pipeline = make_pipeline(opt);
  const auto summary = analysis::monthly_summary(pipeline.annotated());
  const auto& o = summary.overall;
  std::printf(
      "machines (active): %s\nevents:            %s\n"
      "files:             %s  (benign %s, likely-benign %s, malicious %s, "
      "likely-malicious %s, unknown %s)\nprocesses:         %s\n"
      "urls:              %s  (benign %s, malicious %s)\n",
      util::with_commas(o.machines).c_str(),
      util::with_commas(o.events).c_str(),
      util::with_commas(o.files).c_str(), util::pct(o.file_benign).c_str(),
      util::pct(o.file_likely_benign).c_str(),
      util::pct(o.file_malicious).c_str(),
      util::pct(o.file_likely_malicious).c_str(),
      util::pct(100.0 - o.file_benign - o.file_likely_benign -
                o.file_malicious - o.file_likely_malicious)
          .c_str(),
      util::with_commas(o.processes).c_str(), util::with_commas(o.urls).c_str(),
      util::pct(o.url_benign).c_str(), util::pct(o.url_malicious).c_str());

  const auto dist =
      analysis::prevalence_distributions(pipeline.annotated());
  std::printf("prevalence-1 files: %s\n",
              util::pct(100 * dist.prevalence_one_fraction).c_str());
  return 0;
}

int cmd_rules(const Options& opt) {
  const auto pipeline = make_pipeline(opt);
  const auto exp = pipeline.run_rule_experiment(opt.train, opt.test);
  const auto eval = core::LongtailPipeline::evaluate_tau(exp, opt.tau);
  std::printf(
      "train %s (%zu labeled) -> %zu rules, %zu selected at tau=%.2f%%\n"
      "test %s: TP %s over %s malicious, FP %s over %s benign, "
      "%s rejected\n\n",
      std::string(model::month_name(opt.train)).c_str(),
      exp.data.train.size(), exp.all_rules.size(), eval.selected.total,
      100 * opt.tau, std::string(model::month_name(opt.test)).c_str(),
      util::pct(eval.eval.tp_rate(), 2).c_str(),
      util::with_commas(eval.eval.matched_malicious).c_str(),
      util::pct(eval.eval.fp_rate(), 2).c_str(),
      util::with_commas(eval.eval.matched_benign).c_str(),
      util::with_commas(eval.eval.rejected).c_str());

  const auto selected = rules::select_rules(exp.all_rules, opt.tau);
  std::size_t shown = 0;
  for (const auto& rule : selected) {
    if (shown++ >= opt.max_rules) {
      std::printf("  ... (%zu more)\n", selected.size() - opt.max_rules);
      break;
    }
    std::printf("  %s\n", rule.to_string(exp.space).c_str());
  }
  return 0;
}

int cmd_expand(const Options& opt) {
  const auto pipeline = make_pipeline(opt);
  std::printf("%-10s %10s %10s %10s %10s\n", "window", "unknowns", "matched",
              "-> mal", "-> ben");
  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m) {
    const auto exp = pipeline.run_rule_experiment(
        static_cast<model::Month>(m), static_cast<model::Month>(m + 1));
    const auto eval = core::LongtailPipeline::evaluate_tau(exp, opt.tau);
    std::printf("%-3s-%-6s %10s %9.2f%% %10s %10s\n",
                std::string(model::month_abbrev(exp.train_month)).c_str(),
                std::string(model::month_abbrev(exp.test_month)).c_str(),
                util::with_commas(eval.expansion.total_unknowns).c_str(),
                eval.expansion.matched_pct(),
                util::with_commas(eval.expansion.labeled_malicious).c_str(),
                util::with_commas(eval.expansion.labeled_benign).c_str());
  }
  return 0;
}

int cmd_transitions(const Options& opt) {
  const auto pipeline = make_pipeline(opt);
  const auto curves = analysis::transition_analysis(pipeline.annotated());
  std::printf("%6s %9s %9s %9s %9s\n", "day", "benign", "adware", "pup",
              "dropper");
  for (const std::size_t d : {0u, 1u, 3u, 5u, 10u, 20u, 30u})
    std::printf("%6zu %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", d,
                100 * curves.benign.at_day(d), 100 * curves.adware.at_day(d),
                100 * curves.pup.at_day(d), 100 * curves.dropper.at_day(d));
  return 0;
}

int cmd_export(const Options& opt) {
  const auto pipeline = make_pipeline(opt);
  telemetry::export_corpus(pipeline.dataset().corpus, opt.out);
  std::printf("corpus written to %s/\n", opt.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse(argc, argv);
  if (!opt) return usage();
  if (opt->command == "summary") return cmd_summary(*opt);
  if (opt->command == "rules") return cmd_rules(*opt);
  if (opt->command == "expand") return cmd_expand(*opt);
  if (opt->command == "transitions") return cmd_transitions(*opt);
  if (opt->command == "export") return cmd_export(*opt);
  return usage();
}
