// make_report — regenerates the paper's entire evaluation as one markdown
// document.
//
//   make_report [--scale S] [--seed N] [--out FILE]
//
// Runs the full pipeline and renders every table and figure series
// (Tables I-XVII, Figures 1-6) plus the rule-learning evaluation into
// a single REPORT.md, with the paper's reference values inlined.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/longtail.hpp"

namespace {

using namespace longtail;

struct MarkdownWriter {
  std::ofstream out;

  void h2(const std::string& title) { out << "\n## " << title << "\n\n"; }
  void para(const std::string& text) { out << text << "\n\n"; }
  void table_header(const std::vector<std::string>& cols) {
    out << "|";
    for (const auto& c : cols) out << " " << c << " |";
    out << "\n|";
    for (std::size_t i = 0; i < cols.size(); ++i) out << "---|";
    out << "\n";
  }
  void table_row(const std::vector<std::string>& cells) {
    out << "|";
    for (const auto& c : cells) out << " " << c << " |";
    out << "\n";
  }
};

std::string type_name(std::size_t t) {
  return std::string(to_string(static_cast<model::MalwareType>(t)));
}

void monthly_section(MarkdownWriter& md, const analysis::AnnotatedCorpus& a) {
  md.h2("Table I — monthly summary");
  const auto summary = analysis::monthly_summary(a);
  md.table_header({"Month", "Machines", "Events", "Files",
                   "benign/likely-b/malicious/likely-m", "URLs b/m"});
  auto row = [&](const std::string& name, const analysis::MonthlyRow& r) {
    md.table_row({name, util::with_commas(r.machines),
                  util::with_commas(r.events), util::with_commas(r.files),
                  util::pct(r.file_benign) + " / " +
                      util::pct(r.file_likely_benign) + " / " +
                      util::pct(r.file_malicious) + " / " +
                      util::pct(r.file_likely_malicious),
                  util::pct(r.url_benign) + " / " +
                      util::pct(r.url_malicious)});
  };
  for (std::size_t m = 0; m < model::kNumCollectionMonths; ++m)
    row(std::string(model::month_name(static_cast<model::Month>(m))),
        summary.months[m]);
  row("**Overall**", summary.overall);
  md.para("Paper overall: 1,139,183 machines; 3,073,863 events; files 2.3% "
          "/ 2.5% / 9.9% / 2.3%; URLs 29.8% / 15.1%.");
}

void families_section(MarkdownWriter& md,
                      const analysis::AnnotatedCorpus& a) {
  md.h2("Figure 1 — top malware families (AVclass)");
  const auto families = analysis::family_distribution(a, 15);
  md.table_header({"#", "Family", "Samples"});
  std::size_t rank = 1;
  for (const auto& [family, count] : families.top)
    md.table_row({std::to_string(rank++), family,
                  util::with_commas(count)});
  md.para("Family unresolved for " +
          util::pct(100 * families.unresolved_fraction()) +
          " of malicious samples (paper: 58%); " +
          util::with_commas(families.distinct_families) +
          " distinct families.");
}

void types_section(MarkdownWriter& md, const analysis::AnnotatedCorpus& a) {
  md.h2("Table II — behaviour types");
  constexpr double kPaper[] = {22.7, 16.8, 15.4, 11.3, 0.9, 0.6,
                               0.5,  0.3,  0.1,  0.04, 31.3};
  const auto breakdown = analysis::type_breakdown(a);
  md.table_header({"Type", "Measured", "Paper"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t)
    md.table_row({type_name(t), util::pct(breakdown[t]),
                  util::pct(kPaper[t], 2)});
}

void prevalence_section(MarkdownWriter& md,
                        const analysis::AnnotatedCorpus& a) {
  md.h2("Figure 2 — prevalence CDF");
  const auto dist = analysis::prevalence_distributions(a);
  md.table_header({"Prevalence ≤", "All", "Benign", "Malicious", "Unknown"});
  for (const double x : {1.0, 2.0, 5.0, 10.0, 20.0})
    md.table_row({util::fixed(x, 0), util::pct(100 * dist.all.at(x)),
                  util::pct(100 * dist.benign.at(x)),
                  util::pct(100 * dist.malicious.at(x)),
                  util::pct(100 * dist.unknown.at(x))});
  md.para("Prevalence-1 share: " +
          util::pct(100 * dist.prevalence_one_fraction) +
          " (paper ~90%); files at the σ cap: " +
          util::pct(100 * dist.at_cap_fraction, 2) + " (paper ≤0.25%).");
}

void domains_section(MarkdownWriter& md, const analysis::AnnotatedCorpus& a) {
  md.h2("Tables III/IV/XIII — domains");
  const auto pop = analysis::domain_popularity(a, 5);
  md.table_header({"#", "Overall", "Benign", "Malicious"});
  for (std::size_t i = 0; i < 5; ++i) {
    auto cell = [&](const std::vector<analysis::DomainCount>& v) {
      return i < v.size() ? std::string(v[i].first) + " (" +
                                util::with_commas(v[i].second) + ")"
                          : std::string("-");
    };
    md.table_row({std::to_string(i + 1), cell(pop.overall),
                  cell(pop.benign), cell(pop.malicious)});
  }
  const auto unknown_domains = analysis::top_unknown_domains(a, 5);
  std::string top_unknown;
  for (const auto& [d, c] : unknown_domains) {
    if (!top_unknown.empty()) top_unknown += ", ";
    top_unknown += std::string(d);
  }
  md.para("Top unknown-file domains: " + top_unknown + ".");
}

void signers_section(MarkdownWriter& md, const analysis::AnnotatedCorpus& a) {
  md.h2("Tables VI/VII/IX — signers");
  const auto rates = analysis::signing_rates(a);
  md.table_header({"Class", "# files", "Signed"});
  for (std::size_t t = 0; t < model::kNumMalwareTypes; ++t)
    md.table_row({type_name(t), util::with_commas(rates.per_type[t].files),
                  util::pct(rates.per_type[t].signed_pct)});
  md.table_row({"benign", util::with_commas(rates.benign.files),
                util::pct(rates.benign.signed_pct)});
  md.table_row({"unknown", util::with_commas(rates.unknown.files),
                util::pct(rates.unknown.signed_pct)});
  const auto overlap = analysis::signer_overlap(a);
  md.para(util::with_commas(overlap.total.signers) +
          " distinct malicious signers, " +
          util::with_commas(overlap.total.common_with_benign) +
          " in common with benign (paper: 1,870 / 513 at full scale).");
  const auto top = analysis::top_signers(a);
  std::string exclusive;
  for (const auto& [name, count] : top.top_malicious_exclusive) {
    if (!exclusive.empty()) exclusive += ", ";
    exclusive += std::string(name) + " (" + util::with_commas(count) + ")";
  }
  md.para("Top malicious-exclusive signers: " + exclusive + ".");
}

void processes_section(MarkdownWriter& md,
                       const analysis::AnnotatedCorpus& a) {
  md.h2("Tables X/XI — processes");
  const auto rows = analysis::benign_process_behavior(a);
  md.table_header({"Category", "Machines", "Unknown", "Benign", "Malicious",
                   "Infected"});
  for (std::size_t c = 0; c < model::kNumProcessCategories; ++c) {
    const auto& r = rows[c];
    md.table_row(
        {std::string(to_string(static_cast<model::ProcessCategory>(c))),
         util::with_commas(r.machines), util::with_commas(r.unknown_files),
         util::with_commas(r.benign_files),
         util::with_commas(r.malicious_files),
         util::pct(r.infected_machines_pct)});
  }
  const auto browsers = analysis::browser_behavior(a);
  std::string infection;
  for (std::size_t b = 0; b < model::kNumBrowserKinds; ++b) {
    if (!infection.empty()) infection += ", ";
    infection +=
        std::string(to_string(static_cast<model::BrowserKind>(b))) + " " +
        util::pct(browsers[b].infected_machines_pct);
  }
  md.para("Browser infection rates: " + infection +
          " (paper: FF 26.0%, Chrome 31.9%, Opera 27.8%, Safari 18.6%, IE "
          "18.1%).");
}

void transitions_section(MarkdownWriter& md,
                         const analysis::AnnotatedCorpus& a) {
  md.h2("Figure 5 — infection transitions");
  const auto curves = analysis::transition_analysis(a);
  md.table_header({"Day", "benign", "adware", "pup", "dropper"});
  for (const std::size_t d : {0u, 1u, 5u, 10u, 30u})
    md.table_row({std::to_string(d),
                  util::pct(100 * curves.benign.at_day(d)),
                  util::pct(100 * curves.adware.at_day(d)),
                  util::pct(100 * curves.pup.at_day(d)),
                  util::pct(100 * curves.dropper.at_day(d))});
}

void rules_section(MarkdownWriter& md,
                   const core::LongtailPipeline& pipeline) {
  md.h2("Tables XVI/XVII — rule learning and label expansion");
  md.table_header({"Window", "Rules", "Selected", "TP", "FP",
                   "Unknowns matched", "→ mal", "→ ben"});
  for (std::size_t m = 0; m + 1 < model::kNumCollectionMonths; ++m) {
    const auto exp = pipeline.run_rule_experiment(
        static_cast<model::Month>(m), static_cast<model::Month>(m + 1));
    const auto eval = core::LongtailPipeline::evaluate_tau(exp, 0.001);
    md.table_row(
        {std::string(model::month_abbrev(exp.train_month)) + "-" +
             std::string(model::month_abbrev(exp.test_month)),
         util::with_commas(exp.all_rules.size()),
         util::with_commas(eval.selected.total),
         util::pct(eval.eval.tp_rate(), 2), util::pct(eval.eval.fp_rate(), 2),
         util::pct(eval.expansion.matched_pct()),
         util::with_commas(eval.expansion.labeled_malicious),
         util::with_commas(eval.expansion.labeled_benign)});
  }
  md.para("Paper (τ=0.1%): TP 95.3–99.6%, FP 0.00–0.32%, unknowns matched "
          "22.1–38.0%.");

  const auto exp = pipeline.run_rule_experiment(model::Month::kMarch,
                                                model::Month::kApril);
  const auto selected = rules::select_rules(exp.all_rules, 0.001);
  md.para("Example learned rules (March window):");
  std::size_t shown = 0;
  for (const auto& rule : selected) {
    if (rule.coverage < 10) continue;
    if (shown++ >= 5) break;
    md.para("`" + rule.to_string(exp.space) + "`");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.1;
  std::uint64_t seed = 20140101;
  std::string out_path = "REPORT.md";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--scale") scale = std::atof(argv[i + 1]);
    else if (flag == "--seed") seed = std::strtoull(argv[i + 1], nullptr, 10);
    else if (flag == "--out") out_path = argv[i + 1];
  }

  auto profile = synth::paper_calibration(scale);
  profile.seed = seed;
  std::printf("generating at scale %.2f (seed %llu)...\n", scale,
              static_cast<unsigned long long>(seed));
  const core::LongtailPipeline pipeline(profile);
  const auto& a = pipeline.annotated();

  MarkdownWriter md{std::ofstream(out_path)};
  if (!md.out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  md.out << "# longtail — regenerated evaluation\n\n"
         << "Corpus scale " << scale
         << " of the paper's dataset, seed " << seed
         << ". Every value below is recomputed from the raw synthetic "
            "telemetry by the analysis pipeline.\n";

  monthly_section(md, a);
  families_section(md, a);
  types_section(md, a);
  prevalence_section(md, a);
  domains_section(md, a);
  signers_section(md, a);
  processes_section(md, a);
  transitions_section(md, a);
  rules_section(md, pipeline);

  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
