// avtype_tool — standalone behaviour-type extractor, mirroring the tool
// the paper open-sourced (gitlab.com/pub-open/AVType).
//
// Reads one sample per line from stdin. Each line lists the AV detections
// of one file as engine=label pairs separated by tabs:
//
//   Symantec=Trojan.Zbot\tMcAfee=Downloader-FYH!6C7411D1C043\t
//   Microsoft=PWS:Win32/Zbot
//
// Prints the derived behaviour type and the resolution rule that produced
// it. Engines outside the five leading vendors are accepted and ignored,
// as in the paper.
#include <cstdio>
#include <iostream>
#include <string>

#include "avtype/avtype.hpp"
#include "groundtruth/engines.hpp"

namespace {

using namespace longtail;

std::optional<std::uint16_t> engine_index(std::string_view name) {
  for (std::uint16_t e = 0; e < groundtruth::kNumEngines; ++e)
    if (groundtruth::engine_name(e) == name) return e;
  return std::nullopt;
}

const char* resolution_name(avtype::Resolution r) {
  switch (r) {
    case avtype::Resolution::kUnanimous: return "unanimous";
    case avtype::Resolution::kVoting: return "voting";
    case avtype::Resolution::kSpecificity: return "specificity";
    case avtype::Resolution::kManual: return "manual";
    case avtype::Resolution::kNoLeadingLabel: return "no-leading-label";
  }
  return "?";
}

}  // namespace

int main() {
  const avtype::TypeExtractor extractor;
  avtype::TypeStats stats;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    groundtruth::VtReport report;
    std::size_t start = 0;
    bool bad = false;
    while (start <= line.size()) {
      const auto end = line.find('\t', start);
      const auto field = line.substr(start, end - start);
      const auto eq = field.find('=');
      if (eq == std::string::npos || eq == 0) {
        bad = true;
        break;
      }
      const auto engine = engine_index(field.substr(0, eq));
      if (!engine) {
        std::fprintf(stderr, "warning: unknown engine '%s' (skipped)\n",
                     field.substr(0, eq).c_str());
      } else {
        report.detections.push_back({*engine, field.substr(eq + 1)});
      }
      if (end == std::string::npos) break;
      start = end + 1;
    }
    if (bad || report.detections.empty()) {
      std::printf("?\tinvalid-input\n");
      continue;
    }
    const auto result = extractor.derive(report);
    stats.record(result.resolution);
    std::printf("%s\t%s\n", std::string(to_string(result.type)).c_str(),
                resolution_name(result.resolution));
  }

  const auto total = stats.resolved_total() + stats.no_leading_label;
  if (total > 0)
    std::fprintf(stderr,
                 "# %llu samples: unanimous %llu, voting %llu, specificity "
                 "%llu, manual %llu, no-leading-label %llu\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(stats.unanimous),
                 static_cast<unsigned long long>(stats.voting),
                 static_cast<unsigned long long>(stats.specificity),
                 static_cast<unsigned long long>(stats.manual),
                 static_cast<unsigned long long>(stats.no_leading_label));
  return 0;
}
